package livenet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// This file is the live half of the reliable per-link channel that heals
// the LinkLoss adversary (internal/runtime/loss.go). The adversary's
// decisions are resolved at the sender, synchronously, against the same
// (seed, link, seq, attempt) hash the simulator keys — but unlike the
// simulator, every attempt actually travels: a lost transmission goes out
// with its frame-type byte mangled to FrameDataDrop (the frame-mangling
// shim — the receiver counts the arrival for the wire totals and discards
// it), a retransmission is a real re-write of the buffered frame, and the
// delivering attempt goes out as FrameData carrying the link sequence
// numbers the receiving end's dedup/reorder state consumes. Cumulative
// acks flow back on the same connection and trim the bounded retransmit
// buffer.

// linkSender is one outgoing link's reliable-channel sender state: the
// adversary and retry policy the plan resolved for this arc, the link
// sequence counter (owned by the sender goroutine), the bounded
// retransmit buffer (shared with the link's ack loop), and reusable
// encode scratch.
type linkSender struct {
	lm *runtime.LossModel
	rp runtime.RetryPolicy
	// seq is the link sequence counter. Incremented only by the sender
	// goroutine; atomic so durable checkpoints can snapshot it as the
	// link's send watermark without stopping the sender.
	seq  atomic.Uint64
	retx *retxBuf
	enc  []byte

	// Sharded-plane burst scratch (owned by the sender goroutine).
	chains []burstChain
	order  []int
	metas  []wireMeta
	burst  []byte
}

func newLinkSender(lm *runtime.LossModel, rp runtime.RetryPolicy, window int) *linkSender {
	return &linkSender{lm: lm, rp: rp, retx: newRetxBuf(window)}
}

// next allocates the next link sequence number (first frame is 1, the
// receiver cursor's initial expectation).
func (ls *linkSender) next() uint64 {
	return ls.seq.Add(1)
}

// retxBuf is the bounded per-link retransmit buffer: encoded FrameData
// frames by sequence, trimmed by the peer's cumulative acks, oldest
// evicted when the window fills. With head-of-line retries a frame is
// only retransmitted while it is the newest entry, so eviction can only
// ever touch frames already delivered and merely awaiting their ack.
type retxBuf struct {
	mu     sync.Mutex
	frames map[uint64][]byte
	limit  int
}

func newRetxBuf(limit int) *retxBuf {
	if limit <= 0 {
		limit = 64
	}
	return &retxBuf{frames: make(map[uint64][]byte, limit), limit: limit}
}

// add stores one encoded frame (copied: callers reuse their encode
// scratch), evicting the lowest sequence when the buffer is full.
func (b *retxBuf) add(seq uint64, frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.frames) >= b.limit {
		low := seq
		for s := range b.frames {
			if s < low {
				low = s
			}
		}
		delete(b.frames, low)
	}
	b.frames[seq] = append(b.frames[seq][:0], frame...)
}

// get returns the buffered frame for a sequence (nil once acked or
// evicted). The returned slice is the buffer's own storage: valid until
// the next add of the same sequence.
func (b *retxBuf) get(seq uint64) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames[seq]
}

// ack trims every frame at or below the cumulative sequence.
func (b *retxBuf) ack(cum uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.frames {
		if s <= cum {
			delete(b.frames, s)
		}
	}
}

// len reports the buffered frame count.
func (b *retxBuf) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}

// ackLoop reads the dialing side of one reliable broker link: the only
// frames the peer sends back on it are cumulative acks, which trim the
// retransmit buffer. It exits when the connection closes — Stop closes
// every peer connection, so pending per-link state dies with the node.
func (n *Node) ackLoop(conn net.Conn, rb *retxBuf) {
	defer n.wg.Done()
	fr := msg.NewFrameReader(conn)
	fb := msg.GetFrameBuf()
	defer fb.Release()
	for {
		ft, body, err := fr.Next(fb)
		if err != nil {
			return
		}
		if ft != msg.FrameAck {
			continue
		}
		if cum, aerr := msg.DecodeAck(body); aerr == nil {
			rb.ack(cum)
		}
	}
}

// accountChain charges one resolved send chain to the node counters and
// the metrics sink — the sender-side half of the loss accounting both
// backends must agree on exactly.
func (n *Node) accountChain(out *runtime.SendOutcome) {
	if out.Losses > 0 {
		n.cnt.framesLost.Add(int64(out.Losses))
		if n.sink != nil {
			n.sink.FrameLost(out.Losses)
		}
	}
	if out.Retransmits > 0 {
		n.cnt.retransmits.Add(int64(out.Retransmits))
		if n.sink != nil {
			n.sink.Retransmit(out.Retransmits)
		}
	}
	if !out.Deliver {
		n.cnt.droppedDeadline.Add(1)
		if n.sink != nil {
			n.sink.DroppedDeadline(1)
		}
	}
}

// chainTime charges one chain's link time: one rate sample per attempt,
// then one for the duplicated copy — the simulator's draw order, on the
// same per-link stream, so both backends consume identical sequences.
func chainTime(out *runtime.SendOutcome, sizeKB float64, pacer Pacer) float64 {
	var tx float64
	for i := 0; i < out.Attempts; i++ {
		tx += sizeKB * pacer.Sampler.Sample(pacer.Stream)
	}
	if out.Dup {
		tx += sizeKB * pacer.Sampler.Sample(pacer.Stream)
	}
	return tx
}

// wireFrames is how many frames a chain puts on the wire: every lost
// attempt travels as a mangled drop, the delivering attempt as data, and
// a duplicated delivery twice.
func wireFrames(out *runtime.SendOutcome) int {
	k := out.Attempts
	if out.Dup {
		k++
	}
	return k
}

// writeChain realizes one resolved chain on the classic plane: encode
// once, buffer for retransmission, then write every attempt — lost ones
// with the type byte mangled to FrameDataDrop, retransmissions re-read
// from the buffer, the delivering attempt as FrameData, the duplicated
// copy once more. Every successful write counts toward the quiescence
// totals (the receiver counts drops too); only a failed delivering write
// kills the message (charged to the dead neighbor, like the plain path).
func (n *Node) writeChain(pc *peerConn, ls *linkSender, seq, base uint64, m *msg.Message, out *runtime.SendOutcome) {
	frame, err := msg.AppendDataFrame(ls.enc[:0], seq, base, n.epoch.Load(), m)
	ls.enc = frame[:0]
	if err != nil {
		return // oversized re-encode cannot happen for decoded frames
	}
	ls.retx.add(seq, frame)
	wire := ls.retx.get(seq)
	if wire == nil {
		wire = frame // evicted already (window 1): send the scratch copy
	}
	ty := msg.DataFrameType(0)
	drops := out.Attempts - 1
	if !out.Deliver {
		drops = out.Attempts
	}
	for i := 0; i < drops; i++ {
		wire[ty] = msg.FrameDataDrop
		if pc.writeBuf(wire) == nil {
			n.sentPeers.Add(1)
		}
	}
	if !out.Deliver {
		return
	}
	wire[ty] = msg.FrameData
	if pc.writeBuf(wire) != nil {
		// The message died at a dead (crashed or stopped) neighbor.
		if n.sink != nil {
			n.sink.DroppedCrashed(1)
		}
		return
	}
	n.sentPeers.Add(1)
	if out.Dup && pc.writeBuf(wire) == nil {
		n.sentPeers.Add(1)
	}
}

// sendReliable plays one popped message — and, on a reorder decision, its
// immediate queued successor — against the link adversary and realizes
// the resolved chains on the wire: the classic plane's counterpart of the
// simulator's kick. It reports false when the node stopped mid-pacing.
func (n *Node) sendReliable(to msg.NodeID, pc *peerConn, pacer Pacer, ls *linkSender, m *msg.Message, sizeKB float64, dl vtime.Millis) bool {
	now := n.clock.Now()
	seq := ls.next()
	out := runtime.ResolveSend(ls.lm, ls.rp, seq, sizeKB, dl, now)

	// Reorder: the delivered head swaps behind its immediate successor
	// when one is queued — the simulator's pair granularity.
	var (
		m2    *msg.Message
		size2 float64
		seq2  uint64
		out2  runtime.SendOutcome
	)
	if out.Deliver && ls.lm.Swap(seq, now) {
		n.mu.Lock()
		e2, drops := n.b.Queue(to).PopNext(n.b.Strategy(), now, n.b.Params())
		n.accountDrops(drops)
		n.mu.Unlock()
		if e2 != nil {
			m2 = e2.Data.(*msg.Message)
			size2 = e2.SizeKB
			dl2 := ls.rp.EffectiveDeadline(e2.Targets, size2)
			e2.Release()
			seq2 = ls.next()
			out2 = runtime.ResolveSend(ls.lm, ls.rp, seq2, size2, dl2, now)
		}
	}

	// One pacing sleep for the whole exchange: every attempt and every
	// duplicated copy charges a fresh rate sample.
	tx := chainTime(&out, sizeKB, pacer)
	totalKB := sizeKB * float64(wireFrames(&out))
	if m2 != nil {
		tx += chainTime(&out2, size2, pacer)
		totalKB += size2 * float64(wireFrames(&out2))
	}
	start := time.Now()
	if d := vtime.ToDuration(tx * n.cfg.TimeScale); d > 0 {
		select {
		case <-time.After(d):
		case <-n.stopped:
			return false
		}
	}
	n.accountChain(&out)
	if m2 != nil {
		n.accountChain(&out2)
	}
	// Delivery order: the swapped-in successor's frames travel first.
	// base is the lowest still-live sequence at each write (the suffix
	// minimum over the delivery order), so the receiver never waits for
	// an abandoned frame.
	if m2 != nil {
		n.writeChain(pc, ls, seq2, seq, m2, &out2)
	}
	n.writeChain(pc, ls, seq, seq, m, &out)

	if totalKB > 0 {
		elapsed := vtime.FromDuration(time.Since(start)) / n.cfg.TimeScale
		n.mu.Lock()
		if est := n.estimates[to]; est != nil {
			est.Observe(elapsed / totalKB)
		}
		n.mu.Unlock()
	}
	return true
}

// burstChain is one burst entry's resolved chain on the sharded plane.
type burstChain struct {
	m    *msg.Message
	size float64
	seq  uint64
	base uint64
	out  runtime.SendOutcome
}

// wireMeta locates one chain's frames inside the assembled burst buffer,
// for frame-granular accounting after a partial write.
type wireMeta struct {
	off, flen, frames, drops int
	deliver                  bool
}

// resolveBurst assigns link sequence numbers and resolves every burst
// entry's send chain at one scheduling instant, charging one rate sample
// per attempt (and per duplicated copy) — the pacing cost of the whole
// exchange. It returns the summed link time and the wire volume in KB.
func (n *Node) resolveBurst(ls *linkSender, entries []*core.Entry, pacer Pacer, now vtime.Millis) (tx, totalKB float64) {
	ls.chains = ls.chains[:0]
	for _, e := range entries {
		m := e.Data.(*msg.Message)
		seq := ls.next()
		out := runtime.ResolveSend(ls.lm, ls.rp, seq, e.SizeKB, ls.rp.EffectiveDeadline(e.Targets, e.SizeKB), now)
		tx += chainTime(&out, e.SizeKB, pacer)
		totalKB += e.SizeKB * float64(wireFrames(&out))
		ls.chains = append(ls.chains, burstChain{m: m, size: e.SizeKB, seq: seq, out: out})
	}
	return tx, totalKB
}

// orderBurst computes the burst's wire delivery order — a delivered chain
// swaps behind its immediate successor on the adversary's reorder
// decision, the simulator's pair granularity — and stamps each chain's
// base: the suffix-minimum of still-live sequences over that order, so
// the receiver never waits for an abandoned frame.
func orderBurst(ls *linkSender, now vtime.Millis) {
	ls.order = ls.order[:0]
	for i := 0; i < len(ls.chains); {
		c := &ls.chains[i]
		if c.out.Deliver && i+1 < len(ls.chains) && ls.lm.Swap(c.seq, now) {
			ls.order = append(ls.order, i+1, i)
			i += 2
		} else {
			ls.order = append(ls.order, i)
			i++
		}
	}
	low := ^uint64(0)
	for k := len(ls.order) - 1; k >= 0; k-- {
		c := &ls.chains[ls.order[k]]
		if c.out.Deliver && c.seq < low {
			low = c.seq
		}
		c.base = low
		if c.base > c.seq {
			c.base = c.seq // all-abandoned suffix: keep the header valid
		}
	}
}

// writeBurstReliable assembles every chain's wire frames — drops mangled,
// the delivering copy and its duplicate clean — into one contiguous
// buffer, in delivery order, and flushes it with a single syscall. On a
// partial write it counts the frames that fully left the node and charges
// each chain whose delivering frame died to the dead neighbor.
func (n *Node) writeBurstReliable(pc *peerConn, ls *linkSender) {
	ty := msg.DataFrameType(0)
	buf := ls.burst[:0]
	metas := ls.metas[:0]
	epoch := n.epoch.Load()
	for _, idx := range ls.order {
		c := &ls.chains[idx]
		start := len(buf)
		frame, err := msg.AppendDataFrame(buf, c.seq, c.base, epoch, c.m)
		if err != nil {
			buf = frame // == buf[:start]; oversized re-encode cannot happen
			continue
		}
		flen := len(frame) - start
		ls.retx.add(c.seq, frame[start:]) // buffer the clean copy
		drops := c.out.Attempts - 1
		if !c.out.Deliver {
			drops = c.out.Attempts
		}
		total := wireFrames(&c.out)
		for k := 1; k < total; k++ {
			frame = append(frame, frame[start:start+flen]...)
		}
		for d := 0; d < drops; d++ {
			frame[start+d*flen+ty] = msg.FrameDataDrop
		}
		buf = frame
		metas = append(metas, wireMeta{off: start, flen: flen, frames: total, drops: drops, deliver: c.out.Deliver})
	}
	ls.burst, ls.metas = buf, metas
	if len(buf) == 0 {
		return
	}
	wv := net.Buffers{buf}
	written, err := pc.writeBuffers(&wv)
	if err == nil {
		total := 0
		for _, mt := range metas {
			total += mt.frames
		}
		n.sentPeers.Add(int64(total))
		return
	}
	var sent int64
	lost := 0
	for _, mt := range metas {
		gotBytes := written - int64(mt.off)
		if gotBytes < 0 {
			gotBytes = 0
		}
		got := int(gotBytes) / mt.flen
		if got > mt.frames {
			got = mt.frames
		}
		sent += int64(got)
		if mt.deliver && got <= mt.drops {
			lost++
		}
	}
	n.sentPeers.Add(sent)
	if lost > 0 && n.sink != nil {
		n.sink.DroppedCrashed(lost)
	}
}

// recvLink is the receiving end of one reliable inbound link: the shared
// dedup/reorder state both backends run, plus the cumulative-ack cadence
// back toward the sender.
type recvLink struct {
	rs      *runtime.RecvState
	peer    *peerConn
	every   int
	since   int
	ackBuf  []byte
	deliver []*msg.Message
}

func (n *Node) newRecvLink(peer *peerConn) *recvLink {
	every := n.cfg.AckEvery
	if every <= 0 {
		every = 16
	}
	return &recvLink{rs: runtime.NewRecvState(n.cfg.RetxWindow), peer: peer, every: every}
}

// accept runs one arriving data frame through the link state and returns
// the messages now deliverable in order. A suppressed duplicate is
// released here (and its inflight hold dropped); a buffered out-of-order
// frame keeps its hold until it drains. Every AckEvery frames a
// cumulative ack flows back so the sender can trim its retransmit buffer.
func (rl *recvLink) accept(n *Node, seq, base uint64, m *msg.Message) []*msg.Message {
	out, dup, healed := rl.rs.Accept(seq, base, m, rl.deliver[:0])
	rl.deliver = out
	if dup {
		n.cnt.dupsSuppressed.Add(1)
		if n.sink != nil {
			n.sink.DupSuppressed(1)
		}
		m.Release()
		n.inflight.Add(-1)
	}
	if healed > 0 {
		n.cnt.reorderedHealed.Add(int64(healed))
		if n.sink != nil {
			n.sink.ReorderHealed(healed)
		}
	}
	rl.since++
	if rl.since >= rl.every {
		rl.since = 0
		rl.ackBuf = msg.AppendAck(rl.ackBuf[:0], rl.rs.CumAck())
		_ = rl.peer.writeFrame(msg.FrameAck, rl.ackBuf) // dead dialers are fine
	}
	return rl.deliver
}
