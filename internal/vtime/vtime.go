// Package vtime defines the virtual time base shared by the simulator,
// the scheduling core and the live runtime.
//
// Time is measured in milliseconds as a float64, matching the units the
// paper uses throughout (link rates in ms per kilobyte, processing delay
// in ms, allowed delays in seconds converted to ms). A float64 keeps the
// arithmetic with normal-distribution parameters trivial and is exact far
// beyond the precision any of the experiments need (2 h = 7.2e6 ms).
package vtime

import "time"

// Millis is a point in virtual time, or a duration, in milliseconds.
type Millis = float64

// Convenient multiples of one millisecond.
const (
	Ms     Millis = 1
	Second Millis = 1000 * Ms
	Minute Millis = 60 * Second
	Hour   Millis = 60 * Minute
)

// Inf is a time later than any event the simulator can schedule.
const Inf Millis = 1e300

// FromDuration converts a time.Duration to virtual milliseconds.
func FromDuration(d time.Duration) Millis {
	return float64(d) / float64(time.Millisecond)
}

// ToDuration converts virtual milliseconds to a time.Duration, saturating
// at the int64 range.
func ToDuration(m Millis) time.Duration {
	ns := m * float64(time.Millisecond)
	const maxNS = float64(1<<63 - 1)
	if ns > maxNS {
		return time.Duration(1<<63 - 1)
	}
	if ns < -maxNS {
		return -time.Duration(1<<63 - 1)
	}
	return time.Duration(ns)
}

// Seconds reports m in seconds, for human-facing output.
func Seconds(m Millis) float64 { return m / Second }
