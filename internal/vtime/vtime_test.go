package vtime

import (
	"testing"
	"time"
)

func TestUnits(t *testing.T) {
	if Second != 1000 || Minute != 60000 || Hour != 3600000 {
		t.Error("unit constants are wrong")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Millisecond, 2500 * time.Millisecond, time.Hour} {
		if got := ToDuration(FromDuration(d)); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

func TestToDurationSaturates(t *testing.T) {
	if got := ToDuration(Inf); got != time.Duration(1<<63-1) {
		t.Errorf("ToDuration(Inf) = %v, want max duration", got)
	}
	if got := ToDuration(-Inf); got != -time.Duration(1<<63-1) {
		t.Errorf("ToDuration(-Inf) = %v, want min duration", got)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(2500) != 2.5 {
		t.Error("Seconds(2500) should be 2.5")
	}
}
