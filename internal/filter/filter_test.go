package filter

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func attrs(kv ...any) AttrMap {
	m := AttrMap{}
	for i := 0; i+1 < len(kv); i += 2 {
		name := kv[i].(string)
		switch v := kv[i+1].(type) {
		case float64:
			m[name] = Num(v)
		case int:
			m[name] = Num(float64(v))
		case string:
			m[name] = Str(v)
		}
	}
	return m
}

func TestPredicateMatchValue(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    Value
		want bool
	}{
		{Predicate{"A", LT, Num(5)}, Num(4), true},
		{Predicate{"A", LT, Num(5)}, Num(5), false},
		{Predicate{"A", LE, Num(5)}, Num(5), true},
		{Predicate{"A", GT, Num(5)}, Num(6), true},
		{Predicate{"A", GT, Num(5)}, Num(5), false},
		{Predicate{"A", GE, Num(5)}, Num(5), true},
		{Predicate{"A", EQ, Num(5)}, Num(5), true},
		{Predicate{"A", EQ, Num(5)}, Num(5.1), false},
		{Predicate{"A", NE, Num(5)}, Num(5.1), true},
		{Predicate{"A", NE, Num(5)}, Num(5), false},
		{Predicate{"A", EQ, Str("x")}, Str("x"), true},
		{Predicate{"A", EQ, Str("x")}, Str("y"), false},
		{Predicate{"A", LT, Str("m")}, Str("a"), true},
		{Predicate{"A", LT, Str("m")}, Str("z"), false},
		// Cross-kind comparisons never match.
		{Predicate{"A", EQ, Num(5)}, Str("5"), false},
		{Predicate{"A", LT, Str("z")}, Num(1), false},
	}
	for _, c := range cases {
		if got := c.p.MatchValue(c.v); got != c.want {
			t.Errorf("%v .MatchValue(%v) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestParseAndMatchPaperForm(t *testing.T) {
	// The exact workload form from §6.1.
	f, err := Parse("A1 < 6.5 && A2 < 3.0")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(attrs("A1", 5.0, "A2", 2.0)) {
		t.Error("should match (5,2)")
	}
	if f.Match(attrs("A1", 7.0, "A2", 2.0)) {
		t.Error("should not match (7,2)")
	}
	if f.Match(attrs("A1", 5.0, "A2", 3.0)) {
		t.Error("should not match (5,3): strict less-than")
	}
	if f.Match(attrs("A1", 5.0)) {
		t.Error("missing attribute must not match")
	}
}

func TestParseOperators(t *testing.T) {
	cases := []struct {
		src  string
		a    AttrMap
		want bool
	}{
		{"x <= 3", attrs("x", 3), true},
		{"x >= 3", attrs("x", 3), true},
		{"x > 3", attrs("x", 3), false},
		{"x == 3", attrs("x", 3), true},
		{"x = 3", attrs("x", 3), true},
		{"x != 3", attrs("x", 4), true},
		{"name == 'alice'", attrs("name", "alice"), true},
		{`name == "bob"`, attrs("name", "alice"), false},
		{"x < -2.5", attrs("x", -3), true},
		{"x < 1e3", attrs("x", 999), true},
		{"x < 1.5e-2", attrs("x", 0.01), true},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := f.Match(c.a); got != c.want {
			t.Errorf("%q .Match(%v) = %v, want %v", c.src, c.a, got, c.want)
		}
	}
}

func TestParseBooleanStructure(t *testing.T) {
	f := MustParse("(a < 1 || b > 9) && c == 'on'")
	if !f.Match(attrs("a", 0, "c", "on")) {
		t.Error("left disjunct should satisfy")
	}
	if !f.Match(attrs("b", 10, "c", "on")) {
		t.Error("right disjunct should satisfy")
	}
	if f.Match(attrs("a", 0, "b", 10, "c", "off")) {
		t.Error("conjunct c must hold")
	}
	if f.Match(attrs("a", 5, "b", 5, "c", "on")) {
		t.Error("neither disjunct holds")
	}
}

func TestParsePrecedenceAndBindsTighter(t *testing.T) {
	// a<1 || b<1 && c<1  ==  a<1 || (b<1 && c<1)
	f := MustParse("a < 1 || b < 1 && c < 1")
	if !f.Match(attrs("a", 0, "b", 9, "c", 9)) {
		t.Error("a alone should satisfy")
	}
	if f.Match(attrs("a", 9, "b", 0, "c", 9)) {
		t.Error("b alone should not satisfy")
	}
	if !f.Match(attrs("a", 9, "b", 0, "c", 0)) {
		t.Error("b && c should satisfy")
	}
}

func TestParseWildcard(t *testing.T) {
	for _, src := range []string{"", "true", "  "} {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !f.Match(attrs()) || !f.Match(attrs("x", 1)) {
			t.Errorf("Parse(%q) should be wildcard", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a <", "a", "< 3", "a ! 3", "(a < 1", "a < 1)", "a < 'x", "a &% 3",
		"a < 1 &&", "a < 1 && && b < 2", "a < 1 | b < 2", "a # 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"A1 < 6.5 && A2 < 3",
		"(a < 1 || b > 9) && c == \"on\"",
		"x >= 2 || y != 3 || z == 'q'",
		"true",
	}
	for _, src := range srcs {
		f := MustParse(src)
		again := MustParse(f.String())
		if f.String() != again.String() {
			t.Errorf("round trip changed: %q -> %q -> %q", src, f.String(), again.String())
		}
	}
}

func TestStringRoundTripMatchEquivalence(t *testing.T) {
	// Property: reparsing the canonical form yields the same matcher.
	f := func(x1, x2, a1, a2 float64) bool {
		if anyNaN(x1, x2, a1, a2) {
			return true
		}
		orig := And(Lt("A1", x1), Lt("A2", x2))
		re := MustParse(orig.String())
		a := attrs("A1", a1, "A2", a2)
		return orig.Match(a) == re.Match(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaN(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

func TestBuildersMatchParsed(t *testing.T) {
	built := And(Lt("A1", 4), Lt("A2", 7))
	parsed := MustParse("A1<4 && A2<7")
	for a1 := 0.0; a1 < 10; a1 += 0.7 {
		for a2 := 0.0; a2 < 10; a2 += 0.7 {
			a := attrs("A1", a1, "A2", a2)
			if built.Match(a) != parsed.Match(a) {
				t.Fatalf("builder/parser disagree at (%v,%v)", a1, a2)
			}
		}
	}
}

func TestAndOrWildcardIdentities(t *testing.T) {
	w := &Filter{}
	p := Lt("x", 1)
	if got := And(w, p); got.String() != p.String() {
		t.Errorf("And(true, p) = %q, want %q", got.String(), p.String())
	}
	if got := Or(w, p); got.String() != "true" {
		t.Errorf("Or(true, p) = %q, want wildcard", got.String())
	}
	if got := And(); got.String() != "true" {
		t.Errorf("And() = %q, want wildcard", got.String())
	}
	if got := Or(); got.String() != "true" {
		t.Errorf("Or() = %q, want wildcard", got.String())
	}
	if And(nil, nil).Match(attrs()) != true {
		t.Error("And(nil,nil) must be wildcard")
	}
}

func TestDNF(t *testing.T) {
	f := MustParse("(a < 1 || b < 2) && c < 3")
	dnf := f.DNF()
	if len(dnf) != 2 {
		t.Fatalf("DNF has %d disjuncts, want 2", len(dnf))
	}
	for _, conj := range dnf {
		if len(conj) != 2 {
			t.Errorf("disjunct %v has %d predicates, want 2", conj, len(conj))
		}
	}
}

func TestDNFMatchEquivalence(t *testing.T) {
	// Property: DNF evaluation equals tree evaluation.
	f := MustParse("(a < 5 || b > 3) && (c == 1 || a > 2)")
	evalDNF := func(a Attrs) bool {
		for _, conj := range f.DNF() {
			all := true
			for _, p := range conj {
				v, ok := a.Attr(p.Attr)
				if !ok || !p.MatchValue(v) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	prop := func(av, bv, cv float64) bool {
		if anyNaN(av, bv, cv) {
			return true
		}
		a := attrs("a", math.Mod(av, 10), "b", math.Mod(bv, 10), "c", math.Mod(cv, 3))
		return f.Match(a) == evalDNF(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNilFilterMatchesAll(t *testing.T) {
	var f *Filter
	if !f.Match(attrs("x", 1)) {
		t.Error("nil filter should match everything")
	}
	if f.String() != "true" {
		t.Error("nil filter renders as true")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input should panic")
		}
	}()
	MustParse("a <")
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!="} {
		if op.String() != want {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.HasPrefix(Op(99).String(), "Op(") {
		t.Error("unknown op should render as Op(n)")
	}
}

func TestValueString(t *testing.T) {
	if Num(2.5).String() != "2.5" {
		t.Errorf("Num render: %q", Num(2.5).String())
	}
	if Str("hi").String() != `"hi"` {
		t.Errorf("Str render: %q", Str("hi").String())
	}
}
