package filter

import "math"

// Covers reports whether f provably covers g: every message matching g
// also matches f. The test is sound but conservative — it may return
// false for filters whose coverage cannot be established by per-attribute
// interval reasoning over the DNF expansions. Routing uses it only as an
// optimization (aggregating subscription entries), so a false negative
// costs a little table space, never correctness.
func Covers(f, g *Filter) bool {
	var s CoverScratch
	return s.Covers(f, g)
}

// CoverScratch holds the reusable buffers of the covering hot path. A
// broker checking one incoming subscription against many resident
// filters reuses one scratch across every check, so the steady state
// allocates nothing. The zero value is ready to use. Not safe for
// concurrent use.
type CoverScratch struct {
	fdnf, gdnf [][]Predicate
	preds      []Predicate
	fr, gr     []attrInterval
}

// Covers is the allocation-free form of the package-level Covers.
func (s *CoverScratch) Covers(f, g *Filter) bool {
	if f == nil || f.root == nil {
		return true // wildcard covers everything
	}
	if g == nil || g.root == nil {
		// Only a wildcard-equivalent f covers the wildcard; after the
		// check above, f has constraints, so be conservative.
		return false
	}
	s.preds = s.preds[:0]
	s.fdnf = s.appendDNF(f.root, s.fdnf[:0])
	s.gdnf = s.appendDNF(g.root, s.gdnf[:0])
	// f covers g iff every disjunct of g is covered by some disjunct of f
	// (sufficient condition).
	for _, gc := range s.gdnf {
		gr, ok := conjRangesAppend(gc, s.gr[:0])
		s.gr = gr[:0]
		if !ok {
			return false
		}
		covered := false
		for _, fc := range s.fdnf {
			fr, okf := conjRangesAppend(fc, s.fr[:0])
			s.fr = fr[:0]
			if !okf {
				continue
			}
			if rangesCover(fr, gr) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// appendDNF expands a node into disjuncts without allocating for the
// common shapes (single predicates, flat conjunctions, disjunctions of
// those). Predicates lifted out of predNodes live in s.preds; slices
// handed out before a growth keep pointing at the old backing, whose
// values never change, so they stay valid.
func (s *CoverScratch) appendDNF(n node, out [][]Predicate) [][]Predicate {
	switch n := n.(type) {
	case predNode:
		s.preds = append(s.preds, n.p)
		return append(out, s.preds[len(s.preds)-1:len(s.preds):len(s.preds)])
	case conjNode:
		return append(out, n.preds)
	case orNode:
		for _, kid := range n.kids {
			out = s.appendDNF(kid, out)
		}
		return out
	default:
		// andNode of non-trivial children (or future node kinds): fall
		// back to the allocating Cartesian expansion.
		return append(out, n.dnf()...)
	}
}

// attrInterval is one attribute's interval within a folded conjunction.
type attrInterval struct {
	attr string
	iv   interval
}

// interval is a numeric constraint lo < / <= x < / <= hi with optional
// pinned string equality. It is the meet of all predicates on one
// attribute within a conjunction.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	// String-typed equality constraint; "" kind handled via isStr.
	isStr  bool
	strVal string
}

func newInterval() interval {
	return interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (iv.loOpen || iv.hiOpen) {
		return true
	}
	return false
}

// contains reports whether iv ⊇ other.
func (iv interval) contains(other interval) bool {
	if iv.isStr || other.isStr {
		// Only identical pinned strings can establish coverage.
		return iv.isStr && other.isStr && iv.strVal == other.strVal
	}
	// Lower bound: iv.lo must be <= other.lo, with openness compatible.
	if iv.lo > other.lo {
		return false
	}
	if iv.lo == other.lo && iv.loOpen && !other.loOpen {
		return false
	}
	if iv.hi < other.hi {
		return false
	}
	if iv.hi == other.hi && iv.hiOpen && !other.hiOpen {
		return false
	}
	return true
}

// rangesCover reports whether the conjunction folded into fr covers the
// one folded into gr. An unsatisfiable g-conjunction (any empty
// interval) is vacuously covered; otherwise every constraint in f must
// be implied by g's constraint on the same attribute — if g leaves an
// attribute f constrains unconstrained, f cannot cover g.
func rangesCover(fr, gr []attrInterval) bool {
	for i := range gr {
		if gr[i].iv.empty() {
			return true
		}
	}
	for i := range fr {
		gi, ok := findAttr(gr, fr[i].attr)
		if !ok {
			return false
		}
		if !fr[i].iv.contains(gi) {
			return false
		}
	}
	return true
}

// findAttr looks an attribute up in a folded conjunction. Conjunctions
// are a handful of predicates, so a linear scan beats any map.
func findAttr(rs []attrInterval, attr string) (interval, bool) {
	for i := range rs {
		if rs[i].attr == attr {
			return rs[i].iv, true
		}
	}
	return interval{}, false
}

// conjRangesAppend folds a conjunction into per-attribute intervals,
// appending to buf (first-occurrence attribute order). It returns
// ok=false when a predicate cannot be represented (NE, or mixed
// string/number constraints on one attribute) — the caller then falls
// back to "not provably covered".
func conjRangesAppend(conj []Predicate, buf []attrInterval) ([]attrInterval, bool) {
	for pi := range conj {
		p := &conj[pi]
		at := -1
		for i := range buf {
			if buf[i].attr == p.Attr {
				at = i
				break
			}
		}
		exists := at >= 0
		if !exists {
			buf = append(buf, attrInterval{attr: p.Attr, iv: newInterval()})
			at = len(buf) - 1
		}
		iv := buf[at].iv
		switch {
		case p.Val.Kind == String:
			if p.Op != EQ {
				return buf, false
			}
			if exists && (!iv.isStr || iv.strVal != p.Val.Str) {
				return buf, false
			}
			iv = interval{isStr: true, strVal: p.Val.Str}
		case p.Op == NE:
			return buf, false
		default:
			if iv.isStr {
				return buf, false
			}
			x := p.Val.Num
			switch p.Op {
			case LT:
				if x < iv.hi || (x == iv.hi && !iv.hiOpen) {
					iv.hi, iv.hiOpen = x, true
				}
			case LE:
				if x < iv.hi {
					iv.hi, iv.hiOpen = x, false
				}
			case GT:
				if x > iv.lo || (x == iv.lo && !iv.loOpen) {
					iv.lo, iv.loOpen = x, true
				}
			case GE:
				if x > iv.lo {
					iv.lo, iv.loOpen = x, false
				}
			case EQ:
				if x > iv.lo || (x == iv.lo && iv.loOpen) {
					iv.lo, iv.loOpen = x, false
				}
				if x < iv.hi || (x == iv.hi && iv.hiOpen) {
					iv.hi, iv.hiOpen = x, false
				}
			}
		}
		buf[at].iv = iv
	}
	return buf, true
}

// Overlaps reports whether f and g can both match some message, using the
// same conservative interval reasoning. It errs on the side of true (it
// may report overlap for filters that are actually disjoint).
func Overlaps(f, g *Filter) bool {
	if f == nil || f.root == nil || g == nil || g.root == nil {
		return true
	}
	var s CoverScratch
	s.fdnf = s.appendDNF(f.root, s.fdnf[:0])
	s.gdnf = s.appendDNF(g.root, s.gdnf[:0])
	for _, fc := range s.fdnf {
		fr, ok := conjRangesAppend(fc, nil)
		if !ok {
			return true
		}
		for _, gc := range s.gdnf {
			gr, ok := conjRangesAppend(gc, nil)
			if !ok {
				return true
			}
			if rangesOverlap(fr, gr) {
				return true
			}
		}
	}
	return false
}

func rangesOverlap(a, b []attrInterval) bool {
	for i := range a {
		ia := a[i].iv
		ib, exists := findAttr(b, a[i].attr)
		if !exists {
			continue
		}
		if ia.isStr != ib.isStr {
			return false
		}
		if ia.isStr {
			if ia.strVal != ib.strVal {
				return false
			}
			continue
		}
		lo, loOpen := ia.lo, ia.loOpen
		if ib.lo > lo || (ib.lo == lo && ib.loOpen) {
			lo, loOpen = ib.lo, ib.loOpen
		}
		hi, hiOpen := ia.hi, ia.hiOpen
		if ib.hi < hi || (ib.hi == hi && ib.hiOpen) {
			hi, hiOpen = ib.hi, ib.hiOpen
		}
		if lo > hi || (lo == hi && (loOpen || hiOpen)) {
			return false
		}
	}
	return true
}
