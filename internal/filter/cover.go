package filter

import "math"

// Covers reports whether f provably covers g: every message matching g
// also matches f. The test is sound but conservative — it may return
// false for filters whose coverage cannot be established by per-attribute
// interval reasoning over the DNF expansions. Routing uses it only as an
// optimization (aggregating subscription entries), so a false negative
// costs a little table space, never correctness.
func Covers(f, g *Filter) bool {
	if f == nil || f.root == nil {
		return true // wildcard covers everything
	}
	if g == nil || g.root == nil {
		// Only a wildcard-equivalent f covers the wildcard; after the
		// check above, f has constraints, so be conservative.
		return false
	}
	// f covers g iff every disjunct of g is covered by some disjunct of f
	// (sufficient condition).
	for _, gc := range g.DNF() {
		covered := false
		for _, fc := range f.DNF() {
			if conjCovers(fc, gc) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// conjCovers reports whether conjunction fc covers conjunction gc.
func conjCovers(fc, gc []Predicate) bool {
	fr, ok := conjRanges(fc)
	if !ok {
		return false
	}
	gr, ok := conjRanges(gc)
	if !ok {
		return false
	}
	// Every constraint in f must be implied by g's constraints. If g has
	// no constraint on an attribute f constrains, f cannot cover g.
	for attr, fi := range fr {
		gi, exists := gr[attr]
		if !exists {
			return false
		}
		if gi.empty() {
			// g's disjunct matches nothing; vacuously covered.
			return true
		}
		if !fi.contains(gi) {
			return false
		}
	}
	return true
}

// interval is a numeric constraint lo < / <= x < / <= hi with optional
// pinned string equality. It is the meet of all predicates on one
// attribute within a conjunction.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	// String-typed equality constraint; "" kind handled via isStr.
	isStr  bool
	strVal string
}

func newInterval() interval {
	return interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (iv.loOpen || iv.hiOpen) {
		return true
	}
	return false
}

// contains reports whether iv ⊇ other.
func (iv interval) contains(other interval) bool {
	if iv.isStr || other.isStr {
		// Only identical pinned strings can establish coverage.
		return iv.isStr && other.isStr && iv.strVal == other.strVal
	}
	// Lower bound: iv.lo must be <= other.lo, with openness compatible.
	if iv.lo > other.lo {
		return false
	}
	if iv.lo == other.lo && iv.loOpen && !other.loOpen {
		return false
	}
	if iv.hi < other.hi {
		return false
	}
	if iv.hi == other.hi && iv.hiOpen && !other.hiOpen {
		return false
	}
	return true
}

// conjRanges folds a conjunction into per-attribute intervals. It returns
// ok=false when a predicate cannot be represented (NE, or mixed
// string/number constraints on one attribute) — the caller then falls
// back to "not provably covered".
func conjRanges(conj []Predicate) (map[string]interval, bool) {
	out := make(map[string]interval, len(conj))
	for _, p := range conj {
		iv, exists := out[p.Attr]
		if !exists {
			iv = newInterval()
		}
		switch {
		case p.Val.Kind == String:
			if p.Op != EQ {
				return nil, false
			}
			if exists && (!iv.isStr || iv.strVal != p.Val.Str) {
				return nil, false
			}
			iv = interval{isStr: true, strVal: p.Val.Str}
		case p.Op == NE:
			return nil, false
		default:
			if iv.isStr {
				return nil, false
			}
			x := p.Val.Num
			switch p.Op {
			case LT:
				if x < iv.hi || (x == iv.hi && !iv.hiOpen) {
					iv.hi, iv.hiOpen = x, true
				}
			case LE:
				if x < iv.hi {
					iv.hi, iv.hiOpen = x, false
				}
			case GT:
				if x > iv.lo || (x == iv.lo && !iv.loOpen) {
					iv.lo, iv.loOpen = x, true
				}
			case GE:
				if x > iv.lo {
					iv.lo, iv.loOpen = x, false
				}
			case EQ:
				if x > iv.lo || (x == iv.lo && iv.loOpen) {
					iv.lo, iv.loOpen = x, false
				}
				if x < iv.hi || (x == iv.hi && iv.hiOpen) {
					iv.hi, iv.hiOpen = x, false
				}
			}
		}
		out[p.Attr] = iv
	}
	return out, true
}

// Overlaps reports whether f and g can both match some message, using the
// same conservative interval reasoning. It errs on the side of true (it
// may report overlap for filters that are actually disjoint).
func Overlaps(f, g *Filter) bool {
	if f == nil || f.root == nil || g == nil || g.root == nil {
		return true
	}
	for _, fc := range f.DNF() {
		fr, ok := conjRanges(fc)
		if !ok {
			return true
		}
		for _, gc := range g.DNF() {
			gr, ok := conjRanges(gc)
			if !ok {
				return true
			}
			if rangesOverlap(fr, gr) {
				return true
			}
		}
	}
	return false
}

func rangesOverlap(a, b map[string]interval) bool {
	for attr, ia := range a {
		ib, exists := b[attr]
		if !exists {
			continue
		}
		if ia.isStr != ib.isStr {
			return false
		}
		if ia.isStr {
			if ia.strVal != ib.strVal {
				return false
			}
			continue
		}
		lo, loOpen := ia.lo, ia.loOpen
		if ib.lo > lo || (ib.lo == lo && ib.loOpen) {
			lo, loOpen = ib.lo, ib.loOpen
		}
		hi, hiOpen := ia.hi, ia.hiOpen
		if ib.hi < hi || (ib.hi == hi && ib.hiOpen) {
			hi, hiOpen = ib.hi, ib.hiOpen
		}
		if lo > hi || (lo == hi && (loOpen || hiOpen)) {
			return false
		}
	}
	return true
}
