package filter

import (
	"fmt"
	"testing"
)

// TestParseAppendArena pins the arena contract: many filters parsed
// into one append-only predicate buffer stay correct for as long as
// they live, and match exactly what plain Parse produces.
func TestParseAppendArena(t *testing.T) {
	exprs := []string{
		"A1 < 6.5 && A2 < 3.2",
		"price > 100 && tag == 'gold' && qty >= 2",
		"(a < 1 || b > 9) && c == 'on'",
		"true",
		"x != 'y'",
	}
	var buf []Predicate
	filters := make([]*Filter, len(exprs))
	for i, src := range exprs {
		var err error
		filters[i], buf, err = ParseAppend(src, buf)
		if err != nil {
			t.Fatalf("ParseAppend(%q): %v", src, err)
		}
	}
	// Every earlier filter must still render and match like a freshly
	// parsed one, even after later parses appended into the shared
	// buffer (the append-only arena guarantee).
	for i, src := range exprs {
		want := MustParse(src)
		if got, w := filters[i].String(), want.String(); got != w {
			t.Errorf("filter %d corrupted by later arena appends: %q, want %q", i, got, w)
		}
		if fmt.Sprint(filters[i].DNF()) != fmt.Sprint(want.DNF()) {
			t.Errorf("filter %d DNF diverged from Parse", i)
		}
	}
}

// TestParseAppendAllocs pins the satellite win: parsing the paper's
// conjunction shape into a warm caller buffer costs 3 allocations
// (parser, conjunction node box, Filter) — predicates land in the
// caller's slice.
func TestParseAppendAllocs(t *testing.T) {
	buf := make([]Predicate, 0, 64)
	if avg := testing.AllocsPerRun(200, func() {
		var err error
		_, buf, err = ParseAppend("A1 < 6.5 && A2 < 3.2", buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); avg > 3 {
		t.Errorf("arena parse allocates %.1f objects/op, want ≤ 3", avg)
	}
}
