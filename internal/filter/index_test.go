package filter

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// iterMap adapts AttrMap to Iterable with deterministic order.
type iterMap struct{ AttrMap }

func (m iterMap) Each(fn func(string, Value)) {
	names := make([]string, 0, len(m.AttrMap))
	for n := range m.AttrMap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, m.AttrMap[n])
	}
}

func iattrs(kv ...any) iterMap { return iterMap{attrs(kv...)} }

func TestIndexBasicConjunction(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("A1 < 5 && A2 < 3"))
	ix.Add(2, MustParse("A1 < 8"))
	ix.Add(3, MustParse("A1 > 6"))

	got := ix.Match(iattrs("A1", 4.0, "A2", 2.0))
	if !sameIDs(got, []int32{1, 2}) {
		t.Errorf("match = %v, want [1 2]", got)
	}
	got = ix.Match(iattrs("A1", 7.0, "A2", 2.0))
	if !sameIDs(got, []int32{2, 3}) {
		t.Errorf("match = %v, want [2 3]", got)
	}
	got = ix.Match(iattrs("A1", 9.0))
	if !sameIDs(got, []int32{3}) {
		t.Errorf("match = %v, want [3]", got)
	}
}

func TestIndexAllOperators(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("x < 5"))
	ix.Add(2, MustParse("x <= 5"))
	ix.Add(3, MustParse("x > 5"))
	ix.Add(4, MustParse("x >= 5"))
	ix.Add(5, MustParse("x == 5"))

	got := ix.Match(iattrs("x", 5.0))
	if !sameIDs(got, []int32{2, 4, 5}) {
		t.Errorf("x=5: %v, want [2 4 5]", got)
	}
	got = ix.Match(iattrs("x", 4.0))
	if !sameIDs(got, []int32{1, 2}) {
		t.Errorf("x=4: %v, want [1 2]", got)
	}
	got = ix.Match(iattrs("x", 6.0))
	if !sameIDs(got, []int32{3, 4}) {
		t.Errorf("x=6: %v, want [3 4]", got)
	}
}

func TestIndexStringEquality(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("tag == 'hot' && x < 5"))
	ix.Add(2, MustParse("tag == 'cold'"))
	got := ix.Match(iattrs("tag", "hot", "x", 3.0))
	if !sameIDs(got, []int32{1}) {
		t.Errorf("match = %v, want [1]", got)
	}
	if got := ix.Match(iattrs("tag", "warm", "x", 3.0)); len(got) != 0 {
		t.Errorf("match = %v, want none", got)
	}
}

func TestIndexMissingAttributeDoesNotMatch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("A1 < 5 && A2 < 5"))
	if got := ix.Match(iattrs("A1", 1.0)); len(got) != 0 {
		t.Errorf("missing A2 must not match: %v", got)
	}
}

func TestIndexWildcard(t *testing.T) {
	ix := NewIndex()
	ix.Add(7, &Filter{})
	ix.Add(8, nil)
	got := ix.Match(iattrs("anything", 1.0))
	if !sameIDs(got, []int32{7, 8}) {
		t.Errorf("wildcards should match: %v", got)
	}
	got = ix.Match(iattrs())
	if !sameIDs(got, []int32{7, 8}) {
		t.Errorf("wildcards should match empty attrs: %v", got)
	}
}

func TestIndexDisjunction(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a < 2 || a > 8"))
	for _, tc := range []struct {
		v    float64
		want bool
	}{{1, true}, {5, false}, {9, true}} {
		got := ix.Match(iattrs("a", tc.v))
		if (len(got) == 1) != tc.want {
			t.Errorf("a=%v: match=%v, want %v", tc.v, got, tc.want)
		}
		if len(got) > 1 {
			t.Errorf("a=%v: id emitted twice: %v", tc.v, got)
		}
	}
}

func TestIndexFallbackNE(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a != 3"))
	ix.Add(2, MustParse("a < 10"))
	got := ix.Match(iattrs("a", 4.0))
	if !sameIDs(got, []int32{1, 2}) {
		t.Errorf("match = %v, want [1 2]", got)
	}
	got = ix.Match(iattrs("a", 3.0))
	if !sameIDs(got, []int32{2}) {
		t.Errorf("match = %v, want [2]", got)
	}
}

func TestIndexRepeatedEpochsNoBleed(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a < 5 && b < 5"))
	// First match satisfies only a; second only b; neither must fire.
	if got := ix.Match(iattrs("a", 1.0)); len(got) != 0 {
		t.Errorf("partial 1: %v", got)
	}
	if got := ix.Match(iattrs("b", 1.0)); len(got) != 0 {
		t.Errorf("partial 2 (stale counter?): %v", got)
	}
	if got := ix.Match(iattrs("a", 1.0, "b", 1.0)); !sameIDs(got, []int32{1}) {
		t.Errorf("full: %v", got)
	}
}

func TestIndexLen(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a < 5 || b < 2"))
	ix.Add(2, MustParse("a != 1"))
	ix.Add(2, MustParse("c < 1")) // same id again
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2 distinct ids", ix.Len())
	}
}

// TestIndexEquivalenceQuick is the key property: the index must agree
// with direct evaluation for random paper-style filter populations.
func TestIndexEquivalenceQuick(t *testing.T) {
	prop := func(bounds [8][2]float64, msgs [8][2]float64) bool {
		norm := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 5
			}
			return math.Mod(math.Abs(x), 10)
		}
		ix := NewIndex()
		filters := make([]*Filter, len(bounds))
		for i, b := range bounds {
			filters[i] = And(Lt("A1", norm(b[0])), Lt("A2", norm(b[1])))
			ix.Add(int32(i), filters[i])
		}
		for _, mv := range msgs {
			a := iattrs("A1", norm(mv[0]), "A2", norm(mv[1]))
			got := ix.Match(a)
			gotSet := make(map[int32]bool, len(got))
			for _, id := range got {
				gotSet[id] = true
			}
			for i, f := range filters {
				if f.Match(a) != gotSet[int32(i)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIndexEquivalenceMixedOps extends the property to all operators.
func TestIndexEquivalenceMixedOps(t *testing.T) {
	srcs := []string{
		"a < 5", "a <= 5", "a > 5", "a >= 5", "a == 5", "a != 5",
		"a < 3 && b > 2", "a >= 1 && a <= 9", "(a < 2 || a > 8) && b < 5",
		"s == 'x'", "s == 'x' && a < 5", "true",
	}
	ix := NewIndex()
	filters := make([]*Filter, len(srcs))
	for i, src := range srcs {
		filters[i] = MustParse(src)
		ix.Add(int32(i), filters[i])
	}
	for _, av := range []float64{0, 1, 2, 3, 5, 5.5, 8, 9, 10} {
		for _, bv := range []float64{0, 2.5, 5, 7} {
			for _, sv := range []string{"x", "y"} {
				a := iattrs("a", av, "b", bv, "s", sv)
				got := ix.Match(a)
				gotSet := make(map[int32]bool, len(got))
				for _, id := range got {
					gotSet[id] = true
				}
				for i, f := range filters {
					if f.Match(a) != gotSet[int32(i)] {
						t.Fatalf("disagreement on %q at a=%v b=%v s=%q: index=%v direct=%v",
							srcs[i], av, bv, sv, gotSet[int32(i)], f.Match(a))
					}
				}
			}
		}
	}
}

func sameIDs(got []int32, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]int32(nil), got...)
	w := append([]int32(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

// TestIndexMatchReusesOutput pins the zero-allocation contract: Match
// returns an index-owned buffer, stable and correct across repeated
// calls (including interleaved inputs), and steady-state Match performs
// no allocations.
func TestIndexMatchReusesOutput(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a < 5"))
	ix.Add(2, MustParse("a < 8 && b > 1"))
	ix.Add(3, nil)                   // wildcard
	ix.Add(4, MustParse("s != 'x'")) // fallback

	hit := iattrs("a", 3.0, "b", 2.0, "s", "y")
	miss := iattrs("a", 9.0, "s", "x")
	first := append([]int32(nil), ix.Match(hit)...)
	if !sameIDs(first, []int32{1, 2, 3, 4}) {
		t.Fatalf("first match = %v", first)
	}
	if got := ix.Match(miss); !sameIDs(got, []int32{3}) {
		t.Fatalf("miss match = %v", got)
	}
	again := ix.Match(hit)
	if !sameIDs(again, first) {
		t.Fatalf("repeat match = %v, want %v (deterministic & complete)", again, first)
	}
	for i := range again {
		if again[i] != first[i] {
			t.Fatalf("repeat order differs: %v vs %v", again, first)
		}
	}
	// iterMap.Each allocates (it sorts a fresh name list), so measure
	// Match's own allocations with a slice-backed attribute set.
	flat := sliceAttrs{{"a", Num(3)}, {"b", Num(2)}, {"s", Str("y")}}
	var it Iterable = &flat
	allocs := testing.AllocsPerRun(100, func() { ix.Match(it) })
	if allocs != 0 {
		t.Errorf("steady-state Match allocates %v objects per run, want 0", allocs)
	}
}

// sliceAttrs is an allocation-free Iterable for the reuse test.
type sliceAttrs []struct {
	name string
	v    Value
}

func (s *sliceAttrs) Attr(name string) (Value, bool) {
	for _, a := range *s {
		if a.name == name {
			return a.v, true
		}
	}
	return Value{}, false
}

func (s *sliceAttrs) Each(fn func(string, Value)) {
	for _, a := range *s {
		fn(a.name, a.v)
	}
}

// TestIndexSparseIDs drives the map fallback for ids outside the dense
// stamp range (negative and huge), which must behave identically.
func TestIndexSparseIDs(t *testing.T) {
	ix := NewIndex()
	ix.Add(-7, MustParse("a < 5"))
	ix.Add(1<<30, MustParse("a < 9"))
	ix.Add(-7, MustParse("b < 1")) // duplicate id, second conjunction
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	got := ix.Match(iattrs("a", 4.0, "b", 0.0))
	if !sameIDs(got, []int32{-7, 1 << 30}) {
		t.Fatalf("sparse match = %v", got)
	}
	// -7 satisfied by both its conjunctions: emitted once.
	n := 0
	for _, id := range got {
		if id == -7 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("id -7 emitted %d times, want once", n)
	}
}
