package filter

import (
	"fmt"
	"math/rand"
	"testing"
)

// randCoverFilter draws from a quantized family rigged so exact
// duplicates, proper covering, disjointness, empty conjunctions, string
// pins, and disjunctions (the general path) all occur.
func randCoverFilter(rng *rand.Rand) *Filter {
	conj := func() *Filter {
		attrs := []string{"A1", "A2", "A3"}
		rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		n := 1 + rng.Intn(3)
		var preds []*Filter
		for i := 0; i < n; i++ {
			v := float64(1 + rng.Intn(8))
			if rng.Intn(2) == 0 {
				preds = append(preds, Lt(attrs[i], v))
			} else {
				preds = append(preds, Gt(attrs[i], v))
			}
		}
		if rng.Intn(8) == 0 {
			preds = append(preds, Eq("S", Str(fmt.Sprintf("s%d", rng.Intn(2)))))
		}
		return And(preds...)
	}
	if rng.Intn(6) == 0 {
		return Or(conj(), conj())
	}
	return conj()
}

// TestCoverScratchMatchesPackageCovers: the allocation-free scratch path
// must agree with the package-level relation on every pair, and be
// deterministic across repeated evaluations of the same pair.
func TestCoverScratchMatchesPackageCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch CoverScratch
	for i := 0; i < 4000; i++ {
		f, g := randCoverFilter(rng), randCoverFilter(rng)
		want := Covers(f, g)
		if got := scratch.Covers(f, g); got != want {
			t.Fatalf("scratch.Covers(%s, %s) = %v, package Covers = %v", f, g, got, want)
		}
		if got := scratch.Covers(f, g); got != want {
			t.Fatalf("scratch.Covers(%s, %s) unstable across calls", f, g)
		}
	}
}

// TestCoverIndexRandomized: under random add/remove churn, FindExact and
// FindCoverer must agree exactly with a brute-force scan of the resident
// population using the Covers oracle — found answers must be genuine
// coverers, and a miss must mean no resident coverer exists.
func TestCoverIndexRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ci := NewCoverIndex()
	resident := make(map[int32]*Filter)
	var ids []int32
	nextID := int32(1)

	probe := func() {
		t.Helper()
		g := randCoverFilter(rng)
		gotID, gotOK := ci.FindExact(g)
		wantOK := false
		for id, f := range resident {
			if f.String() == g.String() {
				wantOK = true
				_ = id
			}
		}
		if gotOK != wantOK {
			t.Fatalf("FindExact(%s) = %v, brute force = %v", g, gotOK, wantOK)
		}
		if gotOK && resident[gotID].String() != g.String() {
			t.Fatalf("FindExact(%s) returned id %d rendering %s", g, gotID, resident[gotID])
		}
		if wantOK {
			return // FindCoverer contract: the probe must not be resident
		}
		coverID, found := ci.FindCoverer(g)
		anyCoverer := false
		for _, f := range resident {
			if Covers(f, g) {
				anyCoverer = true
			}
		}
		if found != anyCoverer {
			t.Fatalf("FindCoverer(%s) found=%v, brute force says coverer exists=%v (resident %d)",
				g, found, anyCoverer, len(resident))
		}
		if found && !Covers(resident[coverID], g) {
			t.Fatalf("FindCoverer(%s) returned %s which does not cover it", g, resident[coverID])
		}
	}

	for step := 0; step < 3000; step++ {
		if len(ids) > 0 && rng.Intn(10) < 4 {
			i := rng.Intn(len(ids))
			id := ids[i]
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			ci.Remove(id)
			delete(resident, id)
		} else {
			f := randCoverFilter(rng)
			if _, dup := ci.FindExact(f); dup {
				continue // aggregator contract: FindExact gates Add
			}
			ci.Add(nextID, f)
			resident[nextID] = f
			ids = append(ids, nextID)
			nextID++
		}
		if ci.Len() != len(resident) {
			t.Fatalf("Len = %d, want %d", ci.Len(), len(resident))
		}
		if step%7 == 0 {
			probe()
		}
	}
	for _, id := range ids {
		ci.Remove(id)
		delete(resident, id)
	}
	if ci.Len() != 0 {
		t.Fatalf("Len = %d after full drain, want 0", ci.Len())
	}
}
