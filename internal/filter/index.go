package filter

import "sort"

// Iterable is the attribute interface the index needs: lookup plus
// iteration over all attributes.
type Iterable interface {
	Attrs
	// Each calls fn for every attribute.
	Each(fn func(name string, v Value))
}

// Index is a predicate-counting matching index over a set of filters —
// the classic content-based pub/sub matching structure (Siena's counting
// algorithm): each conjunction's numeric predicates are indexed per
// attribute in sorted order, a message's attributes select satisfied
// predicates by binary search, and a conjunction matches when its
// satisfied count reaches its predicate count.
//
// Filters whose DNF contains non-indexable predicates (NE, string
// inequalities) fall back to a linear list, so Match is always equivalent
// to evaluating every filter directly.
//
// The index is built for churn: the subscription population it serves is
// expected to mutate continuously, so every mutation is incremental and
// sublinear.
//
//   - Add inserts each predicate into a small unsorted tail behind its
//     attribute's sorted run; a tail is merged into its run only when it
//     outgrows √n (amortized o(n) per insert — the previous
//     implementation re-sorted every bound list of every operator on
//     every Add, an O(S·P log P) bulk build). Only the lists a predicate
//     actually lands in are ever touched: an Add on attribute "a" never
//     re-sorts attribute "b", and wildcard or fallback adds touch no
//     bound list at all.
//   - Remove(id) tombstones the id's conjunctions through per-id
//     back-references (id → conjunction indices) without touching the
//     predicate lists; the lists are compacted in one O(P) sweep only
//     when dead conjunctions outnumber live ones.
//   - AddBatch indexes a whole population sorting each touched list
//     exactly once (the bulk-build path tables use).
//
// Matching never mutates the index itself — sorted runs are searched by
// binary search and tails (bounded by √n) by linear scan — so concurrent
// matchers may share one index, each bringing its own MatchScratch,
// while mutators synchronize externally (readers-writer style: Add /
// Remove / AddBatch under the write lock, MatchWith under the read
// lock). The serial Match entry point keeps the historical exclusive-use
// contract and is allocation-free in steady state.
type Index struct {
	conjs []conjState
	// wild lists the ids of zero-predicate (wildcard) conjunctions in
	// add order; they match every message. wildDead tombstones removed
	// slots (the list compacts when dead outnumber live).
	wild     []int32
	wildDead []bool
	deadWild int
	// per-attribute predicate lists: a sorted run plus an unsorted tail.
	lt map[string]*boundList // pred: v < bound  (satisfied: bound > v)
	le map[string]*boundList // pred: v <= bound (satisfied: bound >= v)
	gt map[string]*boundList // pred: v > bound  (satisfied: bound < v)
	ge map[string]*boundList // pred: v >= bound (satisfied: bound <= v)
	eq map[string]map[float64][]int32
	se map[string]map[string][]int32 // string equality

	fallback     []fallbackFilter
	deadFallback int

	// known maps each live id to its index state — the back-references
	// Remove follows to tombstone conjunctions without rebuilding.
	known map[int32]*idState

	// live/dead accounting drives compaction.
	liveConjs, deadConjs int

	// Id-density tracking for the dense emit-stamp fast path. Ids are
	// usually small and dense (routing tables use positions); an id
	// outside [0, denseLimit] flips matching to a map permanently.
	dense bool
	maxID int32

	// scratch backs the serial Match entry point.
	scratch MatchScratch

	// merges counts deferred tail merges (diagnostics; tests assert that
	// only touched lists ever merge).
	merges int
}

// denseLimit bounds the id-indexed stamp slice; ids beyond it (or
// negative) use the map fallback instead of a multi-megabyte slice.
const denseLimit = 1 << 20

type conjState struct {
	id     int32 // caller's id for the owning filter
	needed int32
	dead   bool
}

// idState is one id's back-references into the index structures, so
// Remove touches only its own entries in each of them.
type idState struct {
	conjs     []int32 // indices into Index.conjs
	wilds     []int32 // indices into Index.wild
	fallbacks []int32 // indices into Index.fallback
}

// boundList is one (attribute, operator) predicate list: a run sorted by
// bound plus an unsorted insertion tail. The tail is merged into the run
// when it outgrows √(run length), so inserts stay cheap and lookups stay
// logarithmic plus a bounded linear scan.
type boundList struct {
	bounds []float64
	conj   []int32
	// unsorted tail of recent inserts
	tailBounds []float64
	tailConj   []int32
}

type fallbackFilter struct {
	id int32
	f  *Filter
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		lt:    make(map[string]*boundList),
		le:    make(map[string]*boundList),
		gt:    make(map[string]*boundList),
		ge:    make(map[string]*boundList),
		eq:    make(map[string]map[float64][]int32),
		se:    make(map[string]map[string][]int32),
		known: make(map[int32]*idState),
		dense: true,
	}
}

// Len returns the number of distinct live filter ids (indexed +
// wildcard + fallback).
func (ix *Index) Len() int { return len(ix.known) }

// state returns (creating) the id's back-reference record and keeps the
// dense-id tracking current.
func (ix *Index) state(id int32) *idState {
	st := ix.known[id]
	if st == nil {
		st = &idState{}
		ix.known[id] = st
	}
	if id < 0 || id > denseLimit {
		ix.dense = false
	} else if id > ix.maxID {
		ix.maxID = id
	}
	return st
}

// Add registers a filter under the caller's id. Ids may repeat (a
// subscription re-added is matched once per Match call regardless).
// Amortized cost is sublinear: each predicate lands in its list's
// unsorted tail, and a tail is merged only when it outgrows √n — no
// other list is touched, where the previous implementation re-sorted
// every bound list of every operator on every Add (including wildcard
// and fallback adds, which touch no bound list at all).
//
// Mutations (Add, AddBatch, Remove) must be serialized with each other
// and exclude concurrent matchers.
func (ix *Index) Add(id int32, f *Filter) {
	ix.addOne(id, f, false)
}

// AddBatch registers many filters at once, deferring every run merge so
// each touched list is sorted exactly once at the end — the bulk-build
// path. ids and filters are parallel slices.
func (ix *Index) AddBatch(ids []int32, filters []*Filter) {
	if len(ids) != len(filters) {
		panic("filter: AddBatch slice lengths differ")
	}
	for i := range ids {
		ix.addOne(ids[i], filters[i], true)
	}
	ix.Flush()
}

func (ix *Index) addOne(id int32, f *Filter, batch bool) {
	st := ix.state(id)
	if f == nil || f.root == nil {
		// Wildcard: a conjunction with zero predicates always matches.
		// No bound list is touched.
		st.wilds = append(st.wilds, int32(len(ix.wild)))
		ix.wild = append(ix.wild, id)
		ix.wildDead = append(ix.wildDead, false)
		return
	}
	dnf := f.DNF()
	for _, conj := range dnf {
		if !indexable(conj) {
			// Linear fallback evaluates the whole filter once; again no
			// bound list is touched.
			st.fallbacks = append(st.fallbacks, int32(len(ix.fallback)))
			ix.fallback = append(ix.fallback, fallbackFilter{id: id, f: f})
			return
		}
	}
	for _, conj := range dnf {
		ci := int32(len(ix.conjs))
		ix.conjs = append(ix.conjs, conjState{id: id, needed: int32(len(conj))})
		st.conjs = append(st.conjs, ci)
		ix.liveConjs++
		for _, p := range conj {
			switch {
			case p.Val.Kind == String:
				m := ix.se[p.Attr]
				if m == nil {
					m = make(map[string][]int32)
					ix.se[p.Attr] = m
				}
				m[p.Val.Str] = append(m[p.Val.Str], ci)
			case p.Op == EQ:
				m := ix.eq[p.Attr]
				if m == nil {
					m = make(map[float64][]int32)
					ix.eq[p.Attr] = m
				}
				m[p.Val.Num] = append(m[p.Val.Num], ci)
			default:
				ix.insert(ix.opMap(p.Op), p.Attr, p.Val.Num, ci, batch)
			}
		}
	}
}

// opMap returns the bound-list map for an inequality operator.
func (ix *Index) opMap(op Op) map[string]*boundList {
	switch op {
	case LT:
		return ix.lt
	case LE:
		return ix.le
	case GT:
		return ix.gt
	case GE:
		return ix.ge
	}
	panic("filter: not an indexable inequality op")
}

// insert appends one predicate to the list's tail, merging when the tail
// outgrows √(run length) — unless the caller batches, in which case the
// merge is deferred to Flush.
func (ix *Index) insert(m map[string]*boundList, attr string, bound float64, ci int32, batch bool) {
	bl := m[attr]
	if bl == nil {
		bl = &boundList{}
		m[attr] = bl
	}
	bl.tailBounds = append(bl.tailBounds, bound)
	bl.tailConj = append(bl.tailConj, ci)
	if !batch && bl.tailOverflow() {
		bl.merge(ix)
	}
}

// tailOverflow reports whether the tail has outgrown √(run length).
// Small lists merge eagerly past a constant floor so lookups on young
// attributes stay mostly-sorted.
func (bl *boundList) tailOverflow() bool {
	t := len(bl.tailBounds)
	if t < 16 {
		return false
	}
	return t*t > len(bl.bounds)
}

// merge folds the unsorted tail into the sorted run: sort the tail, then
// one backward in-place merge — O(n + t log t), the single sort this
// list pays for the last t inserts.
func (bl *boundList) merge(ix *Index) {
	t := len(bl.tailBounds)
	if t == 0 {
		return
	}
	ix.merges++
	sort.Sort(byBound{bl.tailBounds, bl.tailConj})
	n := len(bl.bounds)
	bl.bounds = append(bl.bounds, bl.tailBounds...)
	bl.conj = append(bl.conj, bl.tailConj...)
	// Backward merge: dest k always sits at or beyond read index i, so
	// writing into the same array is safe.
	i, j := n-1, t-1
	for k := n + t - 1; j >= 0; k-- {
		if i >= 0 && bl.bounds[i] > bl.tailBounds[j] {
			bl.bounds[k] = bl.bounds[i]
			bl.conj[k] = bl.conj[i]
			i--
		} else {
			bl.bounds[k] = bl.tailBounds[j]
			bl.conj[k] = bl.tailConj[j]
			j--
		}
	}
	bl.tailBounds = bl.tailBounds[:0]
	bl.tailConj = bl.tailConj[:0]
}

// Flush merges every pending tail into its sorted run (each touched
// list sorted once). AddBatch calls it; callers that interleave Add
// bursts with latency-critical matching may call it at a quiet moment.
func (ix *Index) Flush() {
	for _, m := range []map[string]*boundList{ix.lt, ix.le, ix.gt, ix.ge} {
		for _, bl := range m {
			bl.merge(ix)
		}
	}
}

// Remove deletes every registration of an id — indexed conjunctions,
// wildcards and fallbacks — and reports whether the id was present.
// Conjunctions are tombstoned through the id's back-references without
// touching the predicate lists; lists are compacted in one sweep only
// when dead conjunctions outnumber live ones.
func (ix *Index) Remove(id int32) bool {
	st := ix.known[id]
	if st == nil {
		return false
	}
	delete(ix.known, id)
	for _, ci := range st.conjs {
		ix.conjs[ci].dead = true
		ix.liveConjs--
		ix.deadConjs++
	}
	for _, wi := range st.wilds {
		if !ix.wildDead[wi] {
			ix.wildDead[wi] = true
			ix.deadWild++
		}
	}
	if ix.deadWild*2 > len(ix.wild) {
		ix.compactWild()
	}
	for _, fi := range st.fallbacks {
		if ix.fallback[fi].f != nil {
			ix.fallback[fi].f = nil
			ix.deadFallback++
		}
	}
	if ix.deadFallback*2 > len(ix.fallback) {
		ix.compactFallback()
	}
	if ix.deadConjs > 64 && ix.deadConjs > ix.liveConjs {
		ix.compact()
	}
	return true
}

// compactWild squeezes tombstoned wildcard slots out, rebuilding the
// surviving ids' back-references (add order preserved).
func (ix *Index) compactWild() {
	for i, dead := range ix.wildDead {
		if !dead {
			if st := ix.known[ix.wild[i]]; st != nil {
				st.wilds = st.wilds[:0]
			}
		}
	}
	k := int32(0)
	for i, id := range ix.wild {
		if ix.wildDead[i] {
			continue
		}
		if st := ix.known[id]; st != nil {
			st.wilds = append(st.wilds, k)
		}
		ix.wild[k] = id
		ix.wildDead[k] = false
		k++
	}
	ix.wild = ix.wild[:k]
	ix.wildDead = ix.wildDead[:k]
	ix.deadWild = 0
}

// compactFallback squeezes tombstoned fallback slots out, rebuilding
// the surviving ids' back-references (add order preserved).
func (ix *Index) compactFallback() {
	for i := range ix.fallback {
		if ix.fallback[i].f != nil {
			if st := ix.known[ix.fallback[i].id]; st != nil {
				st.fallbacks = st.fallbacks[:0]
			}
		}
	}
	kept := ix.fallback[:0]
	for _, fb := range ix.fallback {
		if fb.f == nil {
			continue
		}
		if st := ix.known[fb.id]; st != nil {
			st.fallbacks = append(st.fallbacks, int32(len(kept)))
		}
		kept = append(kept, fb)
	}
	ix.fallback = kept
	ix.deadFallback = 0
}

// compact squeezes tombstoned conjunctions out of every structure in one
// O(conjs + predicates) sweep, restoring the memory and match cost of a
// fresh build. Amortized across the removals that triggered it, the
// sweep is O(predicates per removal).
func (ix *Index) compact() {
	remap := make([]int32, len(ix.conjs))
	live := int32(0)
	for i := range ix.conjs {
		if ix.conjs[i].dead {
			remap[i] = -1
			continue
		}
		remap[i] = live
		ix.conjs[live] = ix.conjs[i]
		live++
	}
	ix.conjs = ix.conjs[:live]

	for _, m := range []map[string]*boundList{ix.lt, ix.le, ix.gt, ix.ge} {
		for attr, bl := range m {
			if len(bl.tailBounds) > 0 {
				bl.merge(ix) // fold the tail first so one filtered run remains
				ix.merges--  // bookkeeping merge, not an insert-driven one
			}
			k := 0
			for i := range bl.bounds {
				if nc := remap[bl.conj[i]]; nc >= 0 {
					bl.bounds[k] = bl.bounds[i]
					bl.conj[k] = nc
					k++
				}
			}
			bl.bounds = bl.bounds[:k]
			bl.conj = bl.conj[:k]
			if k == 0 {
				delete(m, attr)
			}
		}
	}
	compactConjMap(ix.eq, remap)
	compactConjMap(ix.se, remap)
	for _, st := range ix.known {
		k := 0
		for _, ci := range st.conjs {
			if nc := remap[ci]; nc >= 0 {
				st.conjs[k] = nc
				k++
			}
		}
		st.conjs = st.conjs[:k]
	}
	ix.deadConjs = 0
}

// compactConjMap filters and remaps the conjunction lists of an equality
// map (eq or se).
func compactConjMap[K comparable](m map[string]map[K][]int32, remap []int32) {
	for attr, vals := range m {
		for v, cis := range vals {
			k := 0
			for _, ci := range cis {
				if nc := remap[ci]; nc >= 0 {
					cis[k] = nc
					k++
				}
			}
			if k == 0 {
				delete(vals, v)
			} else {
				vals[v] = cis[:k]
			}
		}
		if len(vals) == 0 {
			delete(m, attr)
		}
	}
}

// indexable reports whether a conjunction can live in the counting index.
func indexable(conj []Predicate) bool {
	for _, p := range conj {
		if p.Op == NE {
			return false
		}
		if p.Val.Kind == String && p.Op != EQ {
			return false
		}
	}
	return true
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]uint64, n-cap(s))...)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]int32, n-cap(s))...)
	}
	return s[:n]
}

// byBound sorts parallel bound/conjunction slices by bound.
type byBound struct {
	bounds []float64
	conj   []int32
}

func (s byBound) Len() int           { return len(s.bounds) }
func (s byBound) Less(i, j int) bool { return s.bounds[i] < s.bounds[j] }
func (s byBound) Swap(i, j int) {
	s.bounds[i], s.bounds[j] = s.bounds[j], s.bounds[i]
	s.conj[i], s.conj[j] = s.conj[j], s.conj[i]
}

// MatchScratch is one matcher's private epoch-stamped state: nothing is
// cleared between matches — a slot is live only when its stamp equals
// the scratch's current epoch. Concurrent matchers share one Index by
// bringing one MatchScratch each (the zero value is ready to use); the
// index itself is never written by a match.
type MatchScratch struct {
	ix    *Index
	epoch uint64
	seen  []uint64 // per conjunction: epoch of last predicate hit
	count []int32  // per conjunction: satisfied predicates this epoch
	// Output dedup: dense ids stamp a slice, sparse ids a map.
	emittedAt  []uint64
	emittedMap map[int32]uint64
	out        []int32

	// visit bound once so Match passes a preallocated callback to Each.
	visitor func(name string, v Value)
}

// Match returns the ids whose filters match the attributes, each at most
// once: indexed conjunctions as their counts complete, then wildcards in
// add order, then fallback filters in add order.
//
// The returned slice is a buffer owned by the index, valid until the
// next Match call. Callers may reorder it in place but must not append
// to it or retain it across matches. Match requires exclusive use of the
// index (it shares the index-owned scratch); concurrent matchers use
// MatchWith instead.
func (ix *Index) Match(a Iterable) []int32 { return ix.MatchWith(&ix.scratch, a) }

// MatchWith is Match through a caller-owned scratch: any number of
// matchers may run concurrently against one index, each with its own
// scratch, as long as no mutation (Add / AddBatch / Remove) is in
// flight. The returned slice is owned by the scratch.
func (ix *Index) MatchWith(s *MatchScratch, a Iterable) []int32 {
	s.ix = ix
	if s.visitor == nil {
		s.visitor = s.visit
	}
	s.epoch++
	s.seen = growU64(s.seen, len(ix.conjs))
	s.count = growI32(s.count, len(ix.conjs))
	if ix.dense {
		s.emittedAt = growU64(s.emittedAt, int(ix.maxID)+1)
	} else if s.emittedMap == nil {
		s.emittedMap = make(map[int32]uint64)
	}
	s.out = s.out[:0]
	a.Each(s.visitor)

	// Zero-predicate conjunctions (wildcards) match everything.
	for i, id := range ix.wild {
		if !ix.wildDead[i] {
			s.emit(id)
		}
	}

	// Fallback filters evaluate directly (nil = tombstoned by Remove).
	for i := range ix.fallback {
		if ix.fallback[i].f != nil && ix.fallback[i].f.Match(a) {
			s.emit(ix.fallback[i].id)
		}
	}
	return s.out
}

// visit processes one message attribute, bumping every satisfied
// predicate's conjunction: binary search over each sorted run, linear
// scan over its √n-bounded tail.
func (s *MatchScratch) visit(name string, v Value) {
	ix := s.ix
	if v.Kind == Number {
		x := v.Num
		if bl := ix.lt[name]; bl != nil {
			// Satisfied: bound > x → suffix starting at first bound > x.
			i := sort.SearchFloat64s(bl.bounds, x)
			for ; i < len(bl.bounds) && bl.bounds[i] <= x; i++ {
			}
			for ; i < len(bl.bounds); i++ {
				s.bump(bl.conj[i])
			}
			for i, b := range bl.tailBounds {
				if b > x {
					s.bump(bl.tailConj[i])
				}
			}
		}
		if bl := ix.le[name]; bl != nil {
			// Satisfied: bound >= x.
			for i := sort.SearchFloat64s(bl.bounds, x); i < len(bl.bounds); i++ {
				s.bump(bl.conj[i])
			}
			for i, b := range bl.tailBounds {
				if b >= x {
					s.bump(bl.tailConj[i])
				}
			}
		}
		if bl := ix.gt[name]; bl != nil {
			// Satisfied: bound < x → prefix below x.
			hi := sort.SearchFloat64s(bl.bounds, x)
			for i := 0; i < hi; i++ {
				s.bump(bl.conj[i])
			}
			for i, b := range bl.tailBounds {
				if b < x {
					s.bump(bl.tailConj[i])
				}
			}
		}
		if bl := ix.ge[name]; bl != nil {
			// Satisfied: bound <= x → prefix through x.
			hi := sort.SearchFloat64s(bl.bounds, x)
			for ; hi < len(bl.bounds) && bl.bounds[hi] == x; hi++ {
			}
			for i := 0; i < hi; i++ {
				s.bump(bl.conj[i])
			}
			for i, b := range bl.tailBounds {
				if b <= x {
					s.bump(bl.tailConj[i])
				}
			}
		}
		if m := ix.eq[name]; m != nil {
			for _, ci := range m[x] {
				s.bump(ci)
			}
		}
	} else if m := ix.se[name]; m != nil {
		for _, ci := range m[v.Str] {
			s.bump(ci)
		}
	}
}

// bump credits one satisfied predicate to a conjunction, emitting its id
// when the count completes (tombstoned conjunctions keep counting but
// never emit).
func (s *MatchScratch) bump(ci int32) {
	if s.seen[ci] != s.epoch {
		s.seen[ci] = s.epoch
		s.count[ci] = 0
	}
	s.count[ci]++
	c := &s.ix.conjs[ci]
	if s.count[ci] == c.needed && !c.dead {
		s.emit(c.id)
	}
}

// emit appends an id to the output unless it was already emitted this
// epoch.
func (s *MatchScratch) emit(id int32) {
	if s.ix.dense {
		if s.emittedAt[id] == s.epoch {
			return
		}
		s.emittedAt[id] = s.epoch
	} else {
		if s.emittedMap[id] == s.epoch {
			return
		}
		s.emittedMap[id] = s.epoch
	}
	s.out = append(s.out, id)
}
