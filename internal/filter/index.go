package filter

import "sort"

// Iterable is the attribute interface the index needs: lookup plus
// iteration over all attributes.
type Iterable interface {
	Attrs
	// Each calls fn for every attribute.
	Each(fn func(name string, v Value))
}

// Index is a predicate-counting matching index over a set of filters —
// the classic content-based pub/sub matching structure (Siena's counting
// algorithm): each conjunction's numeric predicates are indexed per
// attribute in sorted order, a message's attributes select satisfied
// predicates by binary search, and a conjunction matches when its
// satisfied count reaches its predicate count.
//
// Filters whose DNF contains non-indexable predicates (NE, string
// inequalities) fall back to a linear list, so Match is always equivalent
// to evaluating every filter directly. The broker's matching loop is the
// hot path of a content-based router; this index turns O(filters) into
// O(log predicates + matches) for the common conjunctive case, and Match
// is allocation-free in steady state: all per-match state lives in
// epoch-stamped slices owned by the index, including the output.
type Index struct {
	conjs []conjState
	// wild lists the ids of zero-predicate (wildcard) conjunctions in
	// add order; they match every message.
	wild []int32
	// per-attribute predicate lists, sorted by bound
	lt map[string]boundList // pred: v < bound  (satisfied: bound > v)
	le map[string]boundList // pred: v <= bound (satisfied: bound >= v)
	gt map[string]boundList // pred: v > bound  (satisfied: bound < v)
	ge map[string]boundList // pred: v >= bound (satisfied: bound <= v)
	eq map[string]map[float64][]int
	se map[string]map[string][]int // string equality

	fallback []fallbackFilter

	// distinct ids ever added, maintained at Add time so Len is O(1).
	known map[int32]struct{}

	// Match-epoch state: nothing is cleared between matches — a slot is
	// live only when its stamp equals the current epoch.
	epoch  uint64
	seen   []uint64 // per conjunction: epoch of last predicate hit
	counts []int    // per conjunction: satisfied predicates this epoch
	// Output dedup. Ids are usually small and dense (routing tables use
	// positions), so the stamp lives in a slice indexed by id; an id
	// outside [0, denseLimit] flips the index to a map permanently.
	dense      bool
	maxID      int32
	emittedAt  []uint64
	emittedMap map[int32]uint64
	out        []int32

	// visit bound once so Match passes a preallocated callback to Each.
	visitor func(name string, v Value)
}

// denseLimit bounds the id-indexed stamp slice; ids beyond it (or
// negative) use the map fallback instead of a multi-megabyte slice.
const denseLimit = 1 << 20

type conjState struct {
	id     int32 // caller's id for the owning filter
	needed int
}

type boundList struct {
	bounds []float64
	conj   []int
}

type fallbackFilter struct {
	id int32
	f  *Filter
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{
		lt:         make(map[string]boundList),
		le:         make(map[string]boundList),
		gt:         make(map[string]boundList),
		ge:         make(map[string]boundList),
		eq:         make(map[string]map[float64][]int),
		se:         make(map[string]map[string][]int),
		known:      make(map[int32]struct{}),
		emittedMap: make(map[int32]uint64),
		dense:      true,
	}
	ix.visitor = ix.visit
	return ix
}

// Len returns the number of distinct added filter ids (indexed +
// fallback), tracked at Add time.
func (ix *Index) Len() int { return len(ix.known) }

// Add registers a filter under the caller's id. Ids may repeat (a
// subscription re-added is matched once per Match call regardless).
// Add must not be interleaved with Match.
func (ix *Index) Add(id int32, f *Filter) {
	ix.known[id] = struct{}{}
	if id < 0 || id > denseLimit {
		ix.dense = false
	} else if id > ix.maxID {
		ix.maxID = id
	}
	if f == nil || f.root == nil {
		// Wildcard: a conjunction with zero predicates always matches.
		ix.wild = append(ix.wild, id)
		ix.dirty()
		return
	}
	for _, conj := range f.DNF() {
		if !indexable(conj) {
			ix.fallback = append(ix.fallback, fallbackFilter{id: id, f: f})
			ix.dirty()
			return // linear fallback evaluates the whole filter once
		}
	}
	for _, conj := range f.DNF() {
		ci := len(ix.conjs)
		ix.conjs = append(ix.conjs, conjState{id: id, needed: len(conj)})
		for _, p := range conj {
			switch {
			case p.Val.Kind == String:
				m := ix.se[p.Attr]
				if m == nil {
					m = make(map[string][]int)
					ix.se[p.Attr] = m
				}
				m[p.Val.Str] = append(m[p.Val.Str], ci)
			case p.Op == LT:
				bl := ix.lt[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.lt[p.Attr] = bl
			case p.Op == LE:
				bl := ix.le[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.le[p.Attr] = bl
			case p.Op == GT:
				bl := ix.gt[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.gt[p.Attr] = bl
			case p.Op == GE:
				bl := ix.ge[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.ge[p.Attr] = bl
			case p.Op == EQ:
				m := ix.eq[p.Attr]
				if m == nil {
					m = make(map[float64][]int)
					ix.eq[p.Attr] = m
				}
				m[p.Val.Num] = append(m[p.Val.Num], ci)
			}
		}
	}
	ix.dirty()
}

// indexable reports whether a conjunction can live in the counting index.
func indexable(conj []Predicate) bool {
	for _, p := range conj {
		if p.Op == NE {
			return false
		}
		if p.Val.Kind == String && p.Op != EQ {
			return false
		}
	}
	return true
}

// dirty re-sorts bound lists and resizes the epoch-stamped counters
// after an Add. Existing stamps stay valid: a zero stamp is simply an
// epoch no live match uses.
func (ix *Index) dirty() {
	for _, m := range []map[string]boundList{ix.lt, ix.le, ix.gt, ix.ge} {
		for attr, bl := range m {
			sort.Sort(byBound{&bl})
			m[attr] = bl
		}
	}
	ix.seen = growU64(ix.seen, len(ix.conjs))
	for len(ix.counts) < len(ix.conjs) {
		ix.counts = append(ix.counts, 0)
	}
	if ix.dense {
		ix.emittedAt = growU64(ix.emittedAt, int(ix.maxID)+1)
	}
}

func growU64(s []uint64, n int) []uint64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

type byBound struct{ bl *boundList }

func (s byBound) Len() int { return len(s.bl.bounds) }
func (s byBound) Less(i, j int) bool {
	return s.bl.bounds[i] < s.bl.bounds[j]
}
func (s byBound) Swap(i, j int) {
	s.bl.bounds[i], s.bl.bounds[j] = s.bl.bounds[j], s.bl.bounds[i]
	s.bl.conj[i], s.bl.conj[j] = s.bl.conj[j], s.bl.conj[i]
}

// Match returns the ids whose filters match the attributes, each at most
// once: indexed conjunctions as their counts complete, then wildcards in
// add order, then fallback filters in add order.
//
// The returned slice is a buffer owned by the index, valid until the
// next Match call. Callers may reorder it in place but must not append
// to it or retain it across matches.
func (ix *Index) Match(a Iterable) []int32 {
	ix.epoch++
	ix.out = ix.out[:0]
	a.Each(ix.visitor)

	// Zero-predicate conjunctions (wildcards) match everything.
	for _, id := range ix.wild {
		ix.emit(id)
	}

	// Fallback filters evaluate directly.
	for i := range ix.fallback {
		if ix.fallback[i].f.Match(a) {
			ix.emit(ix.fallback[i].id)
		}
	}
	return ix.out
}

// visit processes one message attribute, bumping every satisfied
// predicate's conjunction.
func (ix *Index) visit(name string, v Value) {
	if v.Kind == Number {
		x := v.Num
		if bl, ok := ix.lt[name]; ok {
			// Satisfied: bound > x → suffix starting at first bound > x.
			i := sort.SearchFloat64s(bl.bounds, x)
			for ; i < len(bl.bounds) && bl.bounds[i] <= x; i++ {
			}
			for ; i < len(bl.bounds); i++ {
				ix.bump(bl.conj[i])
			}
		}
		if bl, ok := ix.le[name]; ok {
			// Satisfied: bound >= x.
			i := sort.SearchFloat64s(bl.bounds, x)
			for ; i < len(bl.bounds); i++ {
				ix.bump(bl.conj[i])
			}
		}
		if bl, ok := ix.gt[name]; ok {
			// Satisfied: bound < x → prefix below x.
			hi := sort.SearchFloat64s(bl.bounds, x)
			for i := 0; i < hi; i++ {
				ix.bump(bl.conj[i])
			}
		}
		if bl, ok := ix.ge[name]; ok {
			// Satisfied: bound <= x → prefix through x.
			hi := sort.SearchFloat64s(bl.bounds, x)
			for ; hi < len(bl.bounds) && bl.bounds[hi] == x; hi++ {
			}
			for i := 0; i < hi; i++ {
				ix.bump(bl.conj[i])
			}
		}
		if m, ok := ix.eq[name]; ok {
			for _, ci := range m[x] {
				ix.bump(ci)
			}
		}
	} else if m, ok := ix.se[name]; ok {
		for _, ci := range m[v.Str] {
			ix.bump(ci)
		}
	}
}

// bump credits one satisfied predicate to a conjunction, emitting its id
// when the count completes.
func (ix *Index) bump(ci int) {
	if ix.seen[ci] != ix.epoch {
		ix.seen[ci] = ix.epoch
		ix.counts[ci] = 0
	}
	ix.counts[ci]++
	if ix.counts[ci] == ix.conjs[ci].needed {
		ix.emit(ix.conjs[ci].id)
	}
}

// emit appends an id to the output unless it was already emitted this
// epoch.
func (ix *Index) emit(id int32) {
	if ix.dense {
		if ix.emittedAt[id] == ix.epoch {
			return
		}
		ix.emittedAt[id] = ix.epoch
	} else {
		if ix.emittedMap[id] == ix.epoch {
			return
		}
		ix.emittedMap[id] = ix.epoch
	}
	ix.out = append(ix.out, id)
}
