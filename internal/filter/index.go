package filter

import "sort"

// Iterable is the attribute interface the index needs: lookup plus
// iteration over all attributes.
type Iterable interface {
	Attrs
	// Each calls fn for every attribute.
	Each(fn func(name string, v Value))
}

// Index is a predicate-counting matching index over a set of filters —
// the classic content-based pub/sub matching structure (Siena's counting
// algorithm): each conjunction's numeric predicates are indexed per
// attribute in sorted order, a message's attributes select satisfied
// predicates by binary search, and a conjunction matches when its
// satisfied count reaches its predicate count.
//
// Filters whose DNF contains non-indexable predicates (NE, string
// inequalities) fall back to a linear list, so Match is always equivalent
// to evaluating every filter directly. The broker's matching loop is the
// hot path of a content-based router; this index turns O(filters) into
// O(log predicates + matches) for the common conjunctive case.
type Index struct {
	conjs []conjState
	// per-attribute predicate lists, sorted by bound
	lt map[string]boundList // pred: v < bound  (satisfied: bound > v)
	le map[string]boundList // pred: v <= bound (satisfied: bound >= v)
	gt map[string]boundList // pred: v > bound  (satisfied: bound < v)
	ge map[string]boundList // pred: v >= bound (satisfied: bound <= v)
	eq map[string]map[float64][]int
	se map[string]map[string][]int // string equality

	fallback []fallbackFilter

	// match-epoch counters (no clearing between matches)
	epoch   uint64
	seen    []uint64
	counts  []int
	matched map[int32]uint64
}

type conjState struct {
	id     int32 // caller's id for the owning filter
	needed int
}

type boundList struct {
	bounds []float64
	conj   []int
}

type fallbackFilter struct {
	id int32
	f  *Filter
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		lt:      make(map[string]boundList),
		le:      make(map[string]boundList),
		gt:      make(map[string]boundList),
		ge:      make(map[string]boundList),
		eq:      make(map[string]map[float64][]int),
		se:      make(map[string]map[string][]int),
		matched: make(map[int32]uint64),
	}
}

// Len returns the number of added filters (indexed + fallback).
func (ix *Index) Len() int {
	ids := make(map[int32]bool)
	for _, c := range ix.conjs {
		ids[c.id] = true
	}
	for _, fb := range ix.fallback {
		ids[fb.id] = true
	}
	return len(ids)
}

// Add registers a filter under the caller's id. Ids may repeat (a
// subscription re-added is matched once per Match call regardless).
// Add must not be interleaved with Match.
func (ix *Index) Add(id int32, f *Filter) {
	if f == nil || f.root == nil {
		// Wildcard: a conjunction with zero predicates always matches.
		ix.conjs = append(ix.conjs, conjState{id: id, needed: 0})
		ix.dirty()
		return
	}
	for _, conj := range f.DNF() {
		if !indexable(conj) {
			ix.fallback = append(ix.fallback, fallbackFilter{id: id, f: f})
			ix.dirty()
			return // linear fallback evaluates the whole filter once
		}
	}
	for _, conj := range f.DNF() {
		ci := len(ix.conjs)
		ix.conjs = append(ix.conjs, conjState{id: id, needed: len(conj)})
		for _, p := range conj {
			switch {
			case p.Val.Kind == String:
				m := ix.se[p.Attr]
				if m == nil {
					m = make(map[string][]int)
					ix.se[p.Attr] = m
				}
				m[p.Val.Str] = append(m[p.Val.Str], ci)
			case p.Op == LT:
				bl := ix.lt[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.lt[p.Attr] = bl
			case p.Op == LE:
				bl := ix.le[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.le[p.Attr] = bl
			case p.Op == GT:
				bl := ix.gt[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.gt[p.Attr] = bl
			case p.Op == GE:
				bl := ix.ge[p.Attr]
				bl.bounds = append(bl.bounds, p.Val.Num)
				bl.conj = append(bl.conj, ci)
				ix.ge[p.Attr] = bl
			case p.Op == EQ:
				m := ix.eq[p.Attr]
				if m == nil {
					m = make(map[float64][]int)
					ix.eq[p.Attr] = m
				}
				m[p.Val.Num] = append(m[p.Val.Num], ci)
			}
		}
	}
	ix.dirty()
}

// indexable reports whether a conjunction can live in the counting index.
func indexable(conj []Predicate) bool {
	for _, p := range conj {
		if p.Op == NE {
			return false
		}
		if p.Val.Kind == String && p.Op != EQ {
			return false
		}
	}
	return true
}

// dirty re-sorts bound lists and resizes counters after an Add.
func (ix *Index) dirty() {
	for _, m := range []map[string]boundList{ix.lt, ix.le, ix.gt, ix.ge} {
		for attr, bl := range m {
			sort.Sort(byBound{&bl})
			m[attr] = bl
		}
	}
	ix.seen = make([]uint64, len(ix.conjs))
	ix.counts = make([]int, len(ix.conjs))
}

type byBound struct{ bl *boundList }

func (s byBound) Len() int { return len(s.bl.bounds) }
func (s byBound) Less(i, j int) bool {
	return s.bl.bounds[i] < s.bl.bounds[j]
}
func (s byBound) Swap(i, j int) {
	s.bl.bounds[i], s.bl.bounds[j] = s.bl.bounds[j], s.bl.bounds[i]
	s.bl.conj[i], s.bl.conj[j] = s.bl.conj[j], s.bl.conj[i]
}

// Match returns the ids whose filters match the attributes, in first-add
// order, each at most once.
func (ix *Index) Match(a Iterable) []int32 {
	ix.epoch++
	var out []int32
	emit := func(id int32) {
		if ix.matched[id] != ix.epoch {
			ix.matched[id] = ix.epoch
			out = append(out, id)
		}
	}

	bump := func(ci int) {
		if ix.seen[ci] != ix.epoch {
			ix.seen[ci] = ix.epoch
			ix.counts[ci] = 0
		}
		ix.counts[ci]++
		if ix.counts[ci] == ix.conjs[ci].needed {
			emit(ix.conjs[ci].id)
		}
	}

	a.Each(func(name string, v Value) {
		if v.Kind == Number {
			x := v.Num
			if bl, ok := ix.lt[name]; ok {
				// Satisfied: bound > x → suffix starting at first bound > x.
				i := sort.SearchFloat64s(bl.bounds, x)
				for ; i < len(bl.bounds) && bl.bounds[i] <= x; i++ {
				}
				for ; i < len(bl.bounds); i++ {
					bump(bl.conj[i])
				}
			}
			if bl, ok := ix.le[name]; ok {
				// Satisfied: bound >= x.
				i := sort.SearchFloat64s(bl.bounds, x)
				for ; i < len(bl.bounds); i++ {
					bump(bl.conj[i])
				}
			}
			if bl, ok := ix.gt[name]; ok {
				// Satisfied: bound < x → prefix below x.
				hi := sort.SearchFloat64s(bl.bounds, x)
				for i := 0; i < hi; i++ {
					bump(bl.conj[i])
				}
			}
			if bl, ok := ix.ge[name]; ok {
				// Satisfied: bound <= x → prefix through x.
				hi := sort.SearchFloat64s(bl.bounds, x)
				for ; hi < len(bl.bounds) && bl.bounds[hi] == x; hi++ {
				}
				for i := 0; i < hi; i++ {
					bump(bl.conj[i])
				}
			}
			if m, ok := ix.eq[name]; ok {
				for _, ci := range m[x] {
					bump(ci)
				}
			}
		} else if m, ok := ix.se[name]; ok {
			for _, ci := range m[v.Str] {
				bump(ci)
			}
		}
	})

	// Zero-predicate conjunctions (wildcards) match everything.
	for ci, c := range ix.conjs {
		if c.needed == 0 {
			_ = ci
			emit(c.id)
		}
	}

	// Fallback filters evaluate directly.
	for _, fb := range ix.fallback {
		if fb.f.Match(a) {
			emit(fb.id)
		}
	}
	return out
}
