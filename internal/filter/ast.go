package filter

import (
	"fmt"
	"strings"
)

// node is an expression-tree node.
type node interface {
	match(a Attrs) bool
	str(b *strings.Builder, parenCtx byte)
	dnf() [][]Predicate
}

type predNode struct{ p Predicate }

func (n predNode) match(a Attrs) bool {
	v, ok := a.Attr(n.p.Attr)
	return ok && n.p.MatchValue(v)
}

func (n predNode) str(b *strings.Builder, _ byte) { b.WriteString(n.p.String()) }

func (n predNode) dnf() [][]Predicate { return [][]Predicate{{n.p}} }

// conjNode is a flat conjunction of predicates — the overwhelmingly
// common filter shape ("A1 < x && A2 < y") — backed by one predicate
// slice instead of one boxed node per term. The parser emits it for any
// pure-predicate conjunction; semantics, rendering and DNF are
// identical to the equivalent andNode of predNodes.
type conjNode struct{ preds []Predicate }

func (n conjNode) match(a Attrs) bool {
	for i := range n.preds {
		v, ok := a.Attr(n.preds[i].Attr)
		if !ok || !n.preds[i].MatchValue(v) {
			return false
		}
	}
	return true
}

func (n conjNode) str(b *strings.Builder, parenCtx byte) {
	if parenCtx == 'p' {
		b.WriteByte('(')
	}
	for i := range n.preds {
		if i > 0 {
			b.WriteString(" && ")
		}
		b.WriteString(n.preds[i].String())
	}
	if parenCtx == 'p' {
		b.WriteByte(')')
	}
}

func (n conjNode) dnf() [][]Predicate { return [][]Predicate{n.preds} }

type andNode struct{ kids []node }

func (n andNode) match(a Attrs) bool {
	for _, k := range n.kids {
		if !k.match(a) {
			return false
		}
	}
	return true
}

func (n andNode) str(b *strings.Builder, parenCtx byte) {
	if parenCtx == 'p' {
		b.WriteByte('(')
	}
	for i, k := range n.kids {
		if i > 0 {
			b.WriteString(" && ")
		}
		k.str(b, 'a')
	}
	if parenCtx == 'p' {
		b.WriteByte(')')
	}
}

func (n andNode) dnf() [][]Predicate {
	// Cartesian product of the children's disjuncts.
	acc := [][]Predicate{{}}
	for _, k := range n.kids {
		kd := k.dnf()
		next := make([][]Predicate, 0, len(acc)*len(kd))
		for _, left := range acc {
			for _, right := range kd {
				conj := make([]Predicate, 0, len(left)+len(right))
				conj = append(conj, left...)
				conj = append(conj, right...)
				next = append(next, conj)
			}
		}
		acc = next
	}
	return acc
}

type orNode struct{ kids []node }

func (n orNode) match(a Attrs) bool {
	for _, k := range n.kids {
		if k.match(a) {
			return true
		}
	}
	return false
}

func (n orNode) str(b *strings.Builder, parenCtx byte) {
	if parenCtx == 'a' || parenCtx == 'p' {
		b.WriteByte('(')
	}
	for i, k := range n.kids {
		if i > 0 {
			b.WriteString(" || ")
		}
		k.str(b, 'o')
	}
	if parenCtx == 'a' || parenCtx == 'p' {
		b.WriteByte(')')
	}
}

func (n orNode) dnf() [][]Predicate {
	var out [][]Predicate
	for _, k := range n.kids {
		out = append(out, k.dnf()...)
	}
	return out
}

// Filter is a parsed, immutable subscription expression.
//
// The zero-value Filter matches everything (an empty conjunction), which
// models a wildcard subscription.
type Filter struct {
	root node
}

// Match reports whether the attributes satisfy the filter.
func (f *Filter) Match(a Attrs) bool {
	if f == nil || f.root == nil {
		return true
	}
	return f.root.match(a)
}

// String renders the filter back to its canonical source form.
func (f *Filter) String() string {
	if f == nil || f.root == nil {
		return "true"
	}
	var b strings.Builder
	f.root.str(&b, 0)
	return b.String()
}

// DNF returns the filter as a disjunction of conjunctions of predicates.
// A wildcard filter returns a single empty conjunction.
func (f *Filter) DNF() [][]Predicate {
	if f == nil || f.root == nil {
		return [][]Predicate{{}}
	}
	return f.root.dnf()
}

// NewPred builds a single-predicate filter.
func NewPred(attr string, op Op, val Value) *Filter {
	return &Filter{root: predNode{Predicate{Attr: attr, Op: op, Val: val}}}
}

// And combines filters conjunctively. Nil or wildcard operands are
// dropped; And() with no effective operands is a wildcard. A combination
// of pure predicates and flat conjunctions collapses into one conjNode —
// the parser's representation for the same expression — so the
// workload's constructed filters share the parsed filters' flat,
// DNF-without-allocation shape.
func And(fs ...*Filter) *Filter {
	var kids []node
	flat := true
	for _, f := range fs {
		if f == nil || f.root == nil {
			continue
		}
		if a, ok := f.root.(andNode); ok {
			kids = append(kids, a.kids...)
		} else {
			kids = append(kids, f.root)
		}
	}
	nPreds := 0
	for _, k := range kids {
		switch k := k.(type) {
		case predNode:
			nPreds++
		case conjNode:
			nPreds += len(k.preds)
		default:
			flat = false
		}
	}
	switch len(kids) {
	case 0:
		return &Filter{}
	case 1:
		return &Filter{root: kids[0]}
	}
	if flat {
		preds := make([]Predicate, 0, nPreds)
		for _, k := range kids {
			switch k := k.(type) {
			case predNode:
				preds = append(preds, k.p)
			case conjNode:
				preds = append(preds, k.preds...)
			}
		}
		return &Filter{root: conjNode{preds: preds}}
	}
	return &Filter{root: andNode{kids: kids}}
}

// Or combines filters disjunctively. A nil or wildcard operand makes the
// result a wildcard (true ∨ x = true).
func Or(fs ...*Filter) *Filter {
	var kids []node
	for _, f := range fs {
		if f == nil || f.root == nil {
			return &Filter{}
		}
		if o, ok := f.root.(orNode); ok {
			kids = append(kids, o.kids...)
		} else {
			kids = append(kids, f.root)
		}
	}
	switch len(kids) {
	case 0:
		return &Filter{}
	case 1:
		return &Filter{root: kids[0]}
	}
	return &Filter{root: orNode{kids: kids}}
}

// Lt is shorthand for a numeric less-than predicate, the form the paper's
// workload uses ("A1 < x1").
func Lt(attr string, x float64) *Filter { return NewPred(attr, LT, Num(x)) }

// Gt is shorthand for a numeric greater-than predicate.
func Gt(attr string, x float64) *Filter { return NewPred(attr, GT, Num(x)) }

// Eq is shorthand for an equality predicate.
func Eq(attr string, v Value) *Filter { return NewPred(attr, EQ, v) }

// MustParse parses src and panics on error; intended for tests, examples
// and literals known to be valid.
func MustParse(src string) *Filter {
	f, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("filter.MustParse(%q): %v", src, err))
	}
	return f
}
