package filter

import (
	"math"
	"sort"
	"strings"
)

// CoverIndex holds the filters a broker has already forwarded (the
// covering representatives) and answers two queries about an incoming
// filter g: is an identical filter already resident (FindExact), and
// does any resident filter provably cover g (FindCoverer)? Both are the
// subscribe-time hot path of covering-based aggregation, so the index is
// organized to avoid the O(N·Covers) scan:
//
//   - an exact map keyed on the canonical rendering answers FindExact in
//     one lookup;
//   - interval-representable single-disjunct filters are bucketed by
//     their attribute signature. A coverer can only constrain a subset
//     of the probe's attributes, so a probe enumerates the subsets of
//     its own attribute set (≤ 2^k buckets for k attributes) instead of
//     every resident filter;
//   - within a bucket, candidates are sorted by descending upper bound
//     of the signature's first attribute. A candidate whose bound falls
//     below the probe's cannot contain it, so a miss stops at the first
//     such candidate rather than scanning the bucket.
//
// Filters outside that shape (multi-disjunct, NE, mixed-type) go to a
// small general list checked with the full Covers relation. Every query
// path — bucket enumeration, in-bucket order, the general fallback — is
// deterministic in the sequence of Add/Remove calls, which the
// seed-reproducible simulator requires.
//
// Not safe for concurrent use; callers serialize as they do table
// mutation.
type CoverIndex struct {
	exact   map[string]int32
	buckets map[string]*coverBucket
	general []coverEnt
	byID    map[int32]string // id → bucket signature ("\xffg" for general)
	// keys memoizes canonical renderings by filter pointer: filters are
	// immutable, and template-skewed workloads share *Filter across many
	// subscriptions, so the fmt-heavy String is paid once per template,
	// not once per admission. Bounded (cleared when full) so arbitrary
	// one-shot filters cannot grow it without limit.
	keys    map[*Filter]string
	scratch CoverScratch
	attrs   []string
	n       int
}

// keyMemoLimit bounds the rendering memo.
const keyMemoLimit = 1 << 16

const generalSig = "\xffgeneral"

// coverBucket holds the interval forms of one attribute signature,
// sorted by descending primary upper bound (ties by ascending id).
type coverBucket struct {
	ents []coverEnt
}

// coverEnt is one resident filter: its id, the filter itself, and — for
// bucket entries — the folded single-disjunct interval form plus the
// primary-attribute sort key.
type coverEnt struct {
	id     int32
	f      *Filter
	fr     []attrInterval
	primHi float64 // +Inf for string-pinned primaries
}

// NewCoverIndex returns an empty index.
func NewCoverIndex() *CoverIndex {
	return &CoverIndex{
		exact:   make(map[string]int32),
		buckets: make(map[string]*coverBucket),
		byID:    make(map[int32]string),
		keys:    make(map[*Filter]string),
	}
}

// Len reports the number of resident filters.
func (ci *CoverIndex) Len() int { return ci.n }

// Key returns the canonical exact-match key for a filter.
func (ci *CoverIndex) Key(f *Filter) string {
	if k, ok := ci.keys[f]; ok {
		return k
	}
	k := f.String()
	if len(ci.keys) >= keyMemoLimit {
		clear(ci.keys)
	}
	ci.keys[f] = k
	return k
}

// FindExact reports the resident filter rendered identically to g, if
// any.
func (ci *CoverIndex) FindExact(g *Filter) (int32, bool) {
	id, ok := ci.exact[ci.Key(g)]
	return id, ok
}

// FindCoverer reports a resident filter provably covering g, if any. The
// choice among several coverers is deterministic (bucket enumeration
// order, then in-bucket order). g itself must not be resident.
func (ci *CoverIndex) FindCoverer(g *Filter) (int32, bool) {
	gr, simple := ci.simpleRanges(g)
	if !simple {
		return ci.findCovererGeneral(g)
	}
	// Deterministic subset enumeration over g's sorted attribute set.
	attrs := ci.attrs[:0]
	for i := range gr {
		attrs = append(attrs, gr[i].attr)
	}
	sort.Strings(attrs)
	ci.attrs = attrs
	if len(attrs) > 8 {
		return ci.findCovererGeneral(g)
	}
	var sig strings.Builder
	for mask := 0; mask < 1<<len(attrs); mask++ {
		sig.Reset()
		for i, a := range attrs {
			if mask&(1<<i) == 0 {
				continue
			}
			if sig.Len() > 0 {
				sig.WriteByte('\x00')
			}
			sig.WriteString(a)
		}
		b := ci.buckets[sig.String()]
		if b == nil {
			continue
		}
		// The probe's interval on the bucket's primary attribute bounds
		// the in-bucket scan.
		probeHi := math.Inf(1)
		if mask != 0 {
			prim := attrs[lowestBit(mask)]
			if iv, ok := findAttr(gr, prim); ok && !iv.isStr {
				probeHi = iv.hi
			}
		}
		for i := range b.ents {
			e := &b.ents[i]
			if e.primHi < probeHi {
				break
			}
			if rangesCover(e.fr, gr) {
				return e.id, true
			}
		}
	}
	for i := range ci.general {
		if ci.scratch.Covers(ci.general[i].f, g) {
			return ci.general[i].id, true
		}
	}
	return 0, false
}

// findCovererGeneral is the fallback for probes outside the bucket
// shape: scan every bucket in sorted-signature order with the full
// Covers relation, then the general list.
func (ci *CoverIndex) findCovererGeneral(g *Filter) (int32, bool) {
	sigs := make([]string, 0, len(ci.buckets))
	for s := range ci.buckets {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		for i := range ci.buckets[s].ents {
			e := &ci.buckets[s].ents[i]
			if ci.scratch.Covers(e.f, g) {
				return e.id, true
			}
		}
	}
	for i := range ci.general {
		if ci.scratch.Covers(ci.general[i].f, g) {
			return ci.general[i].id, true
		}
	}
	return 0, false
}

// Add makes a filter resident under id. The caller guarantees no
// resident filter renders identically (FindExact first).
func (ci *CoverIndex) Add(id int32, f *Filter) {
	ci.exact[ci.Key(f)] = id
	ci.n++
	gr, simple := ci.simpleRanges(f)
	if !simple {
		ci.general = append(ci.general, coverEnt{id: id, f: f})
		ci.byID[id] = generalSig
		return
	}
	fr := make([]attrInterval, len(gr))
	copy(fr, gr)
	attrs := make([]string, len(fr))
	for i := range fr {
		attrs[i] = fr[i].attr
	}
	sort.Strings(attrs)
	sig := strings.Join(attrs, "\x00")
	primHi := math.Inf(1)
	if len(attrs) > 0 {
		if iv, ok := findAttr(fr, attrs[0]); ok && !iv.isStr {
			primHi = iv.hi
		}
	}
	b := ci.buckets[sig]
	if b == nil {
		b = &coverBucket{}
		ci.buckets[sig] = b
	}
	ent := coverEnt{id: id, f: f, fr: fr, primHi: primHi}
	at := sort.Search(len(b.ents), func(i int) bool {
		if b.ents[i].primHi != ent.primHi {
			return b.ents[i].primHi < ent.primHi
		}
		return b.ents[i].id >= ent.id
	})
	b.ents = append(b.ents, coverEnt{})
	copy(b.ents[at+1:], b.ents[at:])
	b.ents[at] = ent
	ci.byID[id] = sig
}

// Remove withdraws a resident filter. Unknown ids are ignored.
func (ci *CoverIndex) Remove(id int32) {
	sig, ok := ci.byID[id]
	if !ok {
		return
	}
	delete(ci.byID, id)
	ci.n--
	if sig == generalSig {
		for i := range ci.general {
			if ci.general[i].id == id {
				delete(ci.exact, ci.Key(ci.general[i].f))
				ci.general = append(ci.general[:i], ci.general[i+1:]...)
				return
			}
		}
		return
	}
	b := ci.buckets[sig]
	if b == nil {
		return
	}
	for i := range b.ents {
		if b.ents[i].id == id {
			delete(ci.exact, ci.Key(b.ents[i].f))
			b.ents = append(b.ents[:i], b.ents[i+1:]...)
			break
		}
	}
	if len(b.ents) == 0 {
		delete(ci.buckets, sig)
	}
}

// simpleRanges folds f into the single-disjunct interval form when it
// has exactly that shape; the result aliases the index's scratch and is
// only valid until the next call.
func (ci *CoverIndex) simpleRanges(f *Filter) ([]attrInterval, bool) {
	if f == nil || f.root == nil {
		return nil, true // wildcard: empty signature bucket
	}
	s := &ci.scratch
	s.preds = s.preds[:0]
	s.fdnf = s.appendDNF(f.root, s.fdnf[:0])
	if len(s.fdnf) != 1 {
		return nil, false
	}
	fr, ok := conjRangesAppend(s.fdnf[0], s.fr[:0])
	s.fr = fr[:0]
	return fr, ok
}

// lowestBit returns the index of the lowest set bit of a nonzero mask.
func lowestBit(mask int) int {
	i := 0
	for mask&1 == 0 {
		mask >>= 1
		i++
	}
	return i
}
