package filter

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Churn-oriented index tests: incremental Add, Remove, AddBatch and the
// concurrent MatchWith path must all agree with a from-scratch rebuild.

func TestIndexRemove(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, MustParse("a < 5"))
	ix.Add(2, MustParse("a < 8"))
	ix.Add(3, nil)                   // wildcard
	ix.Add(4, MustParse("a != 3"))   // fallback
	ix.Add(5, MustParse("s == 'x'")) // string equality

	if !ix.Remove(2) {
		t.Fatal("Remove(2) = false, want true")
	}
	if ix.Remove(2) {
		t.Fatal("second Remove(2) = true, want false")
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	got := ix.Match(iattrs("a", 4.0, "s", "x"))
	if !sameIDs(got, []int32{1, 3, 4, 5}) {
		t.Fatalf("match after Remove = %v, want [1 3 4 5]", got)
	}
	// Wildcard and fallback removals.
	ix.Remove(3)
	ix.Remove(4)
	got = ix.Match(iattrs("a", 4.0, "s", "x"))
	if !sameIDs(got, []int32{1, 5}) {
		t.Fatalf("match after wild/fallback Remove = %v, want [1 5]", got)
	}
	// Re-adding a removed id resurrects it.
	ix.Add(2, MustParse("a < 8"))
	got = ix.Match(iattrs("a", 4.0))
	if !sameIDs(got, []int32{1, 2}) {
		t.Fatalf("match after re-Add = %v, want [1 2]", got)
	}
}

func TestIndexAddBatch(t *testing.T) {
	srcs := []string{"a < 3", "a > 7", "a >= 2 && b <= 5", "s == 'k'", "true", "a != 1"}
	ids := make([]int32, len(srcs))
	filters := make([]*Filter, len(srcs))
	for i, s := range srcs {
		ids[i] = int32(i)
		filters[i] = MustParse(s)
	}
	batch := NewIndex()
	batch.AddBatch(ids, filters)
	serial := NewIndex()
	for i := range ids {
		serial.Add(ids[i], filters[i])
	}
	for _, a := range []iterMap{
		iattrs("a", 2.0, "b", 4.0, "s", "k"),
		iattrs("a", 9.0),
		iattrs("b", 1.0, "s", "z"),
	} {
		got, want := batch.Match(a), serial.Match(a)
		if !sameIDs(got, want) {
			t.Fatalf("AddBatch disagreement on %v: %v vs %v", a, got, want)
		}
	}
}

// TestIndexChurnEquivalenceRandom is the churn property test: after any
// interleaving of Add, Remove and AddBatch, the incremental index must
// match a from-scratch rebuild of the surviving population — and both
// must match direct filter evaluation.
func TestIndexChurnEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	mkFilter := func() *Filter {
		switch r.Intn(6) {
		case 0:
			return MustParse(fmt.Sprintf("A1 < %.2f && A2 < %.2f", 10*r.Float64(), 10*r.Float64()))
		case 1:
			return MustParse(fmt.Sprintf("A1 >= %.2f", 10*r.Float64()))
		case 2:
			return MustParse(fmt.Sprintf("A1 > %.2f || A2 <= %.2f", 10*r.Float64(), 10*r.Float64()))
		case 3:
			return MustParse(fmt.Sprintf("A1 != %.2f", 10*r.Float64())) // fallback
		case 4:
			return nil // wildcard
		default:
			return MustParse(fmt.Sprintf("tag == 'v%d' && A1 < %.2f", r.Intn(3), 10*r.Float64()))
		}
	}
	for trial := 0; trial < 30; trial++ {
		ix := NewIndex()
		live := map[int32]*Filter{}
		nextID := int32(0)
		for op := 0; op < 400; op++ {
			switch k := r.Intn(10); {
			case k < 5: // Add
				f := mkFilter()
				ix.Add(nextID, f)
				live[nextID] = f
				nextID++
			case k < 8: // Remove a random live id (or a missing one)
				if len(live) == 0 || k == 7 {
					ix.Remove(nextID + 1000) // no-op
					continue
				}
				for id := range live {
					ix.Remove(id)
					delete(live, id)
					break
				}
			default: // AddBatch of a few
				n := 1 + r.Intn(5)
				ids := make([]int32, n)
				fs := make([]*Filter, n)
				for i := 0; i < n; i++ {
					ids[i] = nextID
					fs[i] = mkFilter()
					live[nextID] = fs[i]
					nextID++
				}
				ix.AddBatch(ids, fs)
			}
		}
		// Rebuild from scratch and compare on random messages.
		rebuilt := NewIndex()
		for id, f := range live {
			rebuilt.Add(id, f)
		}
		for m := 0; m < 20; m++ {
			a := iattrs("A1", 10*r.Float64(), "A2", 10*r.Float64(), "tag", fmt.Sprintf("v%d", r.Intn(3)))
			got := append([]int32(nil), ix.Match(a)...)
			want := rebuilt.Match(a)
			if !sameIDs(got, want) {
				t.Fatalf("trial %d: incremental %v != rebuilt %v", trial, got, want)
			}
			gotSet := make(map[int32]bool, len(got))
			for _, id := range got {
				gotSet[id] = true
			}
			for id, f := range live {
				if f.Match(a) != gotSet[id] {
					t.Fatalf("trial %d: id %d (%s): direct=%v index=%v",
						trial, id, f.String(), f.Match(a), gotSet[id])
				}
			}
		}
	}
}

// TestIndexTouchedListsOnly pins the churn fix the rewrite keeps
// visible: only the predicate lists an Add actually lands in are ever
// merged (the old implementation re-sorted all four operator maps'
// lists on every Add), and wildcard/fallback adds touch no list.
func TestIndexTouchedListsOnly(t *testing.T) {
	ix := NewIndex()
	// Seed a list on attribute "b" and force it fully merged.
	for i := 0; i < 40; i++ {
		ix.Add(int32(i), MustParse(fmt.Sprintf("b < %d", i)))
	}
	ix.Flush()
	bTail := len(ix.lt["b"].tailBounds)
	if bTail != 0 {
		t.Fatalf("b tail = %d after Flush, want 0", bTail)
	}
	merges := ix.merges

	// Wildcard and fallback adds: no list touched, no merges anywhere.
	ix.Add(1000, nil)
	ix.Add(1001, MustParse("a != 3"))
	if ix.merges != merges {
		t.Fatalf("wildcard/fallback adds caused %d merges", ix.merges-merges)
	}

	// A burst of adds on attribute "a" may merge a's list but must leave
	// b's run untouched.
	bLen := len(ix.lt["b"].bounds)
	for i := 0; i < 100; i++ {
		ix.Add(int32(2000+i), MustParse(fmt.Sprintf("a < %d", i)))
	}
	if got := len(ix.lt["b"].bounds); got != bLen {
		t.Fatalf("adds on 'a' modified 'b' run: %d -> %d", bLen, got)
	}
	if got := len(ix.lt["b"].tailBounds); got != 0 {
		t.Fatalf("adds on 'a' grew 'b' tail: %d", got)
	}
	if ix.merges == merges {
		t.Fatal("100 adds on one attribute never merged its tail (threshold broken?)")
	}
}

// TestIndexMatchWithConcurrent runs many matchers with private scratch
// against one shared index — the sharded live plane's read-lock pattern
// — and checks every matcher sees the identical result set. Run with
// -race this also proves MatchWith never writes index state.
func TestIndexMatchWithConcurrent(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 200; i++ {
		ix.Add(int32(i), MustParse(fmt.Sprintf("A1 < %d && A2 < %d", i%20, (i*7)%20)))
	}
	want := append([]int32(nil), ix.Match(iattrs("A1", 5.0, "A2", 5.0))...)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s MatchScratch
			for k := 0; k < 500; k++ {
				got := ix.MatchWith(&s, iattrs("A1", 5.0, "A2", 5.0))
				if !sameIDs(got, want) {
					errs <- fmt.Errorf("concurrent match %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIndexRemoveCompacts checks that heavy removal triggers the
// tombstone sweep (dead conjunction count returns to zero) and matching
// stays correct through it.
func TestIndexRemoveCompacts(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 500; i++ {
		ix.Add(int32(i), MustParse(fmt.Sprintf("A1 < %d", i)))
	}
	for i := 0; i < 400; i++ {
		ix.Remove(int32(i))
	}
	// Compaction triggers whenever dead conjunctions outnumber live ones
	// (past a floor of 64); only a sub-threshold residual may remain.
	if ix.deadConjs > 64 && ix.deadConjs > ix.liveConjs {
		t.Fatalf("deadConjs = %d (live %d) after removing 400 of 500: compaction never ran",
			ix.deadConjs, ix.liveConjs)
	}
	if len(ix.conjs) > 2*ix.liveConjs+64 {
		t.Fatalf("conjs slab %d for %d live: tombstones not being swept", len(ix.conjs), ix.liveConjs)
	}
	got := ix.Match(iattrs("A1", 450.0))
	want := make([]int32, 0, 49)
	for i := int32(451); i < 500; i++ {
		want = append(want, i)
	}
	if !sameIDs(got, want) {
		t.Fatalf("post-compaction match returned %d ids, want %d", len(got), len(want))
	}
}
