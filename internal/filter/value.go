// Package filter implements the content-based subscription language of the
// pub/sub system: typed attribute values, comparison predicates, a small
// expression language with conjunction/disjunction and parentheses, a
// matcher, and a conservative covering test used by the routing layer to
// aggregate subscriptions.
//
// The paper's workload uses filters of the form "A1<x1 && A2<x2" over
// numeric attributes (§6.1); the language here is a superset.
package filter

import (
	"fmt"
	"strconv"
)

// Kind discriminates attribute value types.
type Kind uint8

// Supported value kinds.
const (
	Number Kind = iota
	String
)

// Value is an attribute value: a float64 or a string.
type Value struct {
	Kind Kind
	Num  float64
	Str  string
}

// Num returns a numeric Value.
func Num(f float64) Value { return Value{Kind: Number, Num: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: String, Str: s} }

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.Kind == Number {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return strconv.Quote(v.Str)
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == Number {
		return v.Num == o.Num
	}
	return v.Str == o.Str
}

// compare returns -1, 0, +1 for same-kind values and ok=false when the
// kinds differ (cross-kind comparisons never match).
func (v Value) compare(o Value) (c int, ok bool) {
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case Number:
		switch {
		case v.Num < o.Num:
			return -1, true
		case v.Num > o.Num:
			return 1, true
		default:
			return 0, true
		}
	default:
		switch {
		case v.Str < o.Str:
			return -1, true
		case v.Str > o.Str:
			return 1, true
		default:
			return 0, true
		}
	}
}

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	LT Op = iota // <
	LE           // <=
	GT           // >
	GE           // >=
	EQ           // ==
	NE           // !=
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Predicate is an atomic constraint "Attr Op Val". A predicate on an
// attribute the message does not carry, or whose kind differs from Val's,
// does not match.
type Predicate struct {
	Attr string
	Op   Op
	Val  Value
}

// MatchValue reports whether an attribute value satisfies the predicate.
func (p Predicate) MatchValue(v Value) bool {
	c, ok := v.compare(p.Val)
	if !ok {
		return false
	}
	switch p.Op {
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	case EQ:
		return c == 0
	case NE:
		return c != 0
	}
	return false
}

// String implements fmt.Stringer.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Val)
}

// Attrs is the read interface the matcher needs from a message.
type Attrs interface {
	// Attr returns the named attribute value and whether it exists.
	Attr(name string) (Value, bool)
}

// AttrMap adapts a plain map to the Attrs interface.
type AttrMap map[string]Value

// Attr implements Attrs.
func (m AttrMap) Attr(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}
