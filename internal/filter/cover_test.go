package filter

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoversBasic(t *testing.T) {
	cases := []struct {
		f, g string
		want bool
	}{
		{"a < 10", "a < 5", true},
		{"a < 5", "a < 10", false},
		{"a < 5", "a < 5", true},
		{"a <= 5", "a < 5", true},
		{"a < 5", "a <= 5", false},
		{"a > 1", "a > 2", true},
		{"a >= 2", "a > 2", true},
		{"a > 2", "a >= 2", false},
		{"a < 10", "a < 5 && b < 3", true},
		{"a < 10 && b < 9", "a < 5 && b < 3", true},
		{"a < 10 && b < 2", "a < 5 && b < 3", false},
		{"a < 10 && b < 9", "a < 5", false}, // f constrains b, g does not
		{"a == 3", "a == 3", true},
		{"a <= 3 && a >= 3", "a == 3", true},
		{"a == 3", "a <= 3 && a >= 3", true},
		{"s == 'x'", "s == 'x'", true},
		{"s == 'x'", "s == 'y'", false},
		{"true", "a < 5", true},
		{"a < 5", "true", false},
	}
	for _, c := range cases {
		f, g := MustParse(c.f), MustParse(c.g)
		if got := Covers(f, g); got != c.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", c.f, c.g, got, c.want)
		}
	}
}

func TestCoversDisjunction(t *testing.T) {
	f := MustParse("a < 10 || a > 20")
	g := MustParse("a < 5 || a > 30")
	if !Covers(f, g) {
		t.Error("each disjunct of g is inside a disjunct of f")
	}
	g2 := MustParse("a < 5 || a > 15")
	if Covers(f, g2) {
		t.Error("a>15 is not inside either disjunct of f")
	}
}

func TestCoversConservativeOnNE(t *testing.T) {
	// NE is not representable in the interval algebra; Covers must fall
	// back to false (sound), never true incorrectly.
	f := MustParse("a != 3")
	g := MustParse("a != 3")
	if Covers(f, g) {
		t.Error("NE coverage is not provable; must be conservative")
	}
}

// TestCoversSoundness is the key property: whenever Covers(f, g) is true,
// every point matching g must match f.
func TestCoversSoundness(t *testing.T) {
	prop := func(fx1, fx2, gx1, gx2, p1, p2 float64) bool {
		if anyNaN(fx1, fx2, gx1, gx2, p1, p2) {
			return true
		}
		norm := func(x float64) float64 { return math.Mod(math.Abs(x), 10) }
		f := And(Lt("A1", norm(fx1)), Lt("A2", norm(fx2)))
		g := And(Lt("A1", norm(gx1)), Lt("A2", norm(gx2)))
		if !Covers(f, g) {
			return true // nothing to check
		}
		a := attrs("A1", norm(p1), "A2", norm(p2))
		if g.Match(a) && !f.Match(a) {
			return false // soundness violation
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCoversCompletenessOnPaperForm: for the paper's filter family
// (conjunctions of strict upper bounds) interval reasoning is exact.
func TestCoversCompletenessOnPaperForm(t *testing.T) {
	prop := func(fx1, fx2, gx1, gx2 float64) bool {
		if anyNaN(fx1, fx2, gx1, gx2) {
			return true
		}
		norm := func(x float64) float64 { return math.Mod(math.Abs(x), 10) }
		a1f, a2f := norm(fx1), norm(fx2)
		a1g, a2g := norm(gx1), norm(gx2)
		f := And(Lt("A1", a1f), Lt("A2", a2f))
		g := And(Lt("A1", a1g), Lt("A2", a2g))
		want := a1g <= a1f && a2g <= a2f
		return Covers(f, g) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCoversTransitiveOnIntervals(t *testing.T) {
	f := MustParse("a < 10")
	g := MustParse("a < 7")
	h := MustParse("a < 3")
	if !Covers(f, g) || !Covers(g, h) || !Covers(f, h) {
		t.Error("interval coverage should be transitive here")
	}
}

func TestOverlapsBasic(t *testing.T) {
	cases := []struct {
		f, g string
		want bool
	}{
		{"a < 5", "a > 3", true},
		{"a < 3", "a > 5", false},
		{"a < 3", "a >= 3", false},
		{"a <= 3", "a >= 3", true},
		{"a < 5 && b < 5", "a > 3 && b > 3", true},
		{"a < 5 && b < 3", "a > 3 && b > 5", false},
		{"s == 'x'", "s == 'y'", false},
		{"s == 'x'", "s == 'x'", true},
		{"a < 5", "b > 3", true}, // disjoint attributes always can overlap
		{"true", "a < 1", true},
	}
	for _, c := range cases {
		f, g := MustParse(c.f), MustParse(c.g)
		if got := Overlaps(f, g); got != c.want {
			t.Errorf("Overlaps(%q, %q) = %v, want %v", c.f, c.g, got, c.want)
		}
	}
}

// TestOverlapsSoundness: if two filters both match a point they must be
// reported as overlapping.
func TestOverlapsSoundness(t *testing.T) {
	prop := func(fx1, gx1, p1 float64) bool {
		if anyNaN(fx1, gx1, p1) {
			return true
		}
		norm := func(x float64) float64 { return math.Mod(math.Abs(x), 10) }
		f := Lt("A1", norm(fx1))
		g := Gt("A1", norm(gx1))
		a := attrs("A1", norm(p1))
		if f.Match(a) && g.Match(a) && !Overlaps(f, g) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCoversEmptyDisjunct(t *testing.T) {
	// g's disjunct is unsatisfiable (a<1 && a>5): vacuously covered.
	f := MustParse("a < 0.5")
	g := MustParse("a < 1 && a > 5")
	if !Covers(f, g) {
		t.Error("unsatisfiable g should be covered vacuously")
	}
}
