package filter

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a subscription expression. Grammar:
//
//	filter    := orExpr
//	orExpr    := andExpr ( "||" andExpr )*
//	andExpr   := term ( "&&" term )*
//	term      := predicate | "(" orExpr ")" | "true"
//	predicate := IDENT op value
//	op        := "<" | "<=" | ">" | ">=" | "==" | "=" | "!="
//	value     := NUMBER | STRING
//
// Identifiers are [A-Za-z_][A-Za-z0-9_.]*. Numbers use Go float syntax.
// Strings are single- or double-quoted. "true" (or an empty input) is the
// wildcard filter.
func Parse(src string) (*Filter, error) {
	p := &parser{lex: lexer{src: src}}
	p.next()
	if p.tok.kind == tokEOF {
		return &Filter{}, nil
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.tok.text)
	}
	// A nil root is the canonical wildcard.
	return &Filter{root: root}, nil
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // comparison operator
	tokAnd    // &&
	tokOr     // ||
	tokLParen // (
	tokRParen // )
	tokErr
)

type token struct {
	kind tokKind
	text string
	num  float64
	op   Op
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) lex() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}
	case c == '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, text: "&&", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "&", pos: start}
	case c == '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, text: "||", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "|", pos: start}
	case c == '<':
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokOp, op: LE, text: "<=", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: LT, text: "<", pos: start}
	case c == '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokOp, op: GE, text: ">=", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: GT, text: ">", pos: start}
	case c == '=':
		if strings.HasPrefix(l.src[l.pos:], "==") {
			l.pos += 2
			return token{kind: tokOp, op: EQ, text: "==", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: EQ, text: "=", pos: start}
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokOp, op: NE, text: "!=", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "!", pos: start}
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{kind: tokErr, text: "unterminated string", pos: start}
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}
	case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
		end := l.pos
		for end < len(l.src) && strings.ContainsRune("0123456789.eE+-", rune(l.src[end])) {
			// Stop '+'/'-' unless preceded by an exponent marker.
			if (l.src[end] == '+' || l.src[end] == '-') && end > l.pos &&
				l.src[end-1] != 'e' && l.src[end-1] != 'E' {
				break
			}
			end++
		}
		text := l.src[l.pos:end]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{kind: tokErr, text: text, pos: start}
		}
		l.pos = end
		return token{kind: tokNumber, text: text, num: f, pos: start}
	case isIdentStart(c):
		end := l.pos
		for end < len(l.src) && isIdentPart(l.src[end]) {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{kind: tokIdent, text: text, pos: start}
	}
	l.pos++
	return token{kind: tokErr, text: string(c), pos: start}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) next() { p.tok = p.lex.lex() }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("filter: pos %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// parseOr returns a nil node for a wildcard (always-true) expression.
func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	wildcard := left == nil
	var kids []node
	if left != nil {
		kids = append(kids, left)
	}
	for p.tok.kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if right == nil {
			wildcard = true // true ∨ x = true
		} else {
			kids = append(kids, right)
		}
	}
	if wildcard {
		return nil, nil
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var kids []node
	if left != nil {
		kids = append(kids, left)
	}
	for p.tok.kind == tokAnd {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if right != nil {
			kids = append(kids, right) // true ∧ x = x
		}
	}
	switch len(kids) {
	case 0:
		return nil, nil
	case 1:
		return kids[0], nil
	}
	return andNode{kids: kids}, nil
}

func (p *parser) parseTerm() (node, error) {
	switch p.tok.kind {
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.tok.text)
		}
		p.next()
		return inner, nil
	case tokIdent:
		if p.tok.text == "true" {
			p.next()
			// Wildcard term: represented by a nil node, collapsed by the
			// callers (true ∧ x = x, true ∨ x = true).
			return nil, nil
		}
		attr := p.tok.text
		p.next()
		if p.tok.kind != tokOp {
			return nil, p.errorf("expected comparison operator after %q, got %q", attr, p.tok.text)
		}
		op := p.tok.op
		p.next()
		var val Value
		switch p.tok.kind {
		case tokNumber:
			val = Num(p.tok.num)
		case tokString:
			val = Str(p.tok.text)
		default:
			return nil, p.errorf("expected value, got %q", p.tok.text)
		}
		p.next()
		return predNode{Predicate{Attr: attr, Op: op, Val: val}}, nil
	case tokErr:
		return nil, p.errorf("bad token %q", p.tok.text)
	default:
		return nil, p.errorf("expected predicate or '(', got %q", p.tok.text)
	}
}
