package filter

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a subscription expression. Grammar:
//
//	filter    := orExpr
//	orExpr    := andExpr ( "||" andExpr )*
//	andExpr   := term ( "&&" term )*
//	term      := predicate | "(" orExpr ")" | "true"
//	predicate := IDENT op value
//	op        := "<" | "<=" | ">" | ">=" | "==" | "=" | "!="
//	value     := NUMBER | STRING
//
// Identifiers are [A-Za-z_][A-Za-z0-9_.]*. Numbers use Go float syntax.
// Strings are single- or double-quoted. "true" (or an empty input) is the
// wildcard filter.
func Parse(src string) (*Filter, error) {
	f, _, err := ParseAppend(src, nil)
	return f, err
}

// ParseAppend is Parse with a caller-provided predicate buffer: leaf
// predicates are appended to preds in a single pass and the returned
// filter references the appended region directly (no per-predicate node
// boxing). It returns the grown slice for reuse — but note the filter
// aliases it, so a caller recycling the buffer across many filters must
// keep it append-only for as long as those filters live (an arena), or
// pass nil and let each filter own its predicates.
func ParseAppend(src string, preds []Predicate) (*Filter, []Predicate, error) {
	p := &parser{lex: lexer{src: src}, preds: preds}
	p.next()
	if p.tok.kind == tokEOF {
		return &Filter{}, p.preds, nil
	}
	root, err := p.parseOr()
	if err != nil {
		return nil, p.preds, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.preds, p.errorf("unexpected %q after expression", p.tok.text)
	}
	// A nil root is the canonical wildcard.
	return &Filter{root: root}, p.preds, nil
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp     // comparison operator
	tokAnd    // &&
	tokOr     // ||
	tokLParen // (
	tokRParen // )
	tokErr
)

type token struct {
	kind tokKind
	text string
	num  float64
	op   Op
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) lex() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}
	case c == '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, text: "&&", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "&", pos: start}
	case c == '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, text: "||", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "|", pos: start}
	case c == '<':
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokOp, op: LE, text: "<=", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: LT, text: "<", pos: start}
	case c == '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokOp, op: GE, text: ">=", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: GT, text: ">", pos: start}
	case c == '=':
		if strings.HasPrefix(l.src[l.pos:], "==") {
			l.pos += 2
			return token{kind: tokOp, op: EQ, text: "==", pos: start}
		}
		l.pos++
		return token{kind: tokOp, op: EQ, text: "=", pos: start}
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokOp, op: NE, text: "!=", pos: start}
		}
		l.pos++
		return token{kind: tokErr, text: "!", pos: start}
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		lit := l.pos
		escaped := false
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				escaped = true
				l.pos++
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{kind: tokErr, text: "unterminated string", pos: start}
		}
		text := l.src[lit:l.pos]
		l.pos++ // closing quote
		if escaped {
			// Rare path: unescape into a fresh buffer.
			var b strings.Builder
			b.Grow(len(text))
			for i := 0; i < len(text); i++ {
				if text[i] == '\\' && i+1 < len(text) {
					i++
				}
				b.WriteByte(text[i])
			}
			text = b.String()
		}
		return token{kind: tokString, text: text, pos: start}
	case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
		end := l.pos
		for end < len(l.src) && strings.ContainsRune("0123456789.eE+-", rune(l.src[end])) {
			// Stop '+'/'-' unless preceded by an exponent marker.
			if (l.src[end] == '+' || l.src[end] == '-') && end > l.pos &&
				l.src[end-1] != 'e' && l.src[end-1] != 'E' {
				break
			}
			end++
		}
		text := l.src[l.pos:end]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{kind: tokErr, text: text, pos: start}
		}
		l.pos = end
		return token{kind: tokNumber, text: text, num: f, pos: start}
	case isIdentStart(c):
		end := l.pos
		for end < len(l.src) && isIdentPart(l.src[end]) {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{kind: tokIdent, text: text, pos: start}
	}
	l.pos++
	return token{kind: tokErr, text: string(c), pos: start}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

type parser struct {
	lex lexer
	tok token
	// preds accumulates every leaf predicate in source order, in one
	// append-only buffer (caller-provided via ParseAppend). Conjunction
	// nodes alias sub-ranges of it; it is never rewound, so aliased
	// ranges stay valid even across or-branches and nesting.
	preds []Predicate
}

func (p *parser) next() { p.tok = p.lex.lex() }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("filter: pos %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// parseOr returns a nil node for a wildcard (always-true) expression.
func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	wildcard := left == nil
	var kids []node
	if left != nil {
		kids = append(kids, left)
	}
	for p.tok.kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if right == nil {
			wildcard = true // true ∨ x = true
		} else {
			kids = append(kids, right)
		}
	}
	if wildcard {
		return nil, nil
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orNode{kids: kids}, nil
}

// parseAnd parses a conjunction. The common pure-predicate case emits a
// flat conjNode aliasing the parser's predicate buffer — one node and
// zero per-term boxing; a conjunction that mixes parenthesized groups
// falls back to the general andNode, preserving term order.
func (p *parser) parseAnd() (node, error) {
	start := len(p.preds)
	var kids []node
	mixed := false
	for {
		// mark bounds this conjunction's own flat run: a parenthesized
		// term appends its inner predicates to the shared buffer too,
		// so the run collected directly by this level is [start, mark).
		mark := len(p.preds)
		n, isPred, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		switch {
		case isPred && mixed:
			kids = append(kids, predNode{p.preds[len(p.preds)-1]})
		case !isPred && n != nil:
			if !mixed {
				// First non-predicate term: materialize the predicate
				// run collected so far, in source order.
				for _, q := range p.preds[start:mark] {
					kids = append(kids, predNode{q})
				}
				mixed = true
			}
			kids = append(kids, n)
		}
		// isPred && !mixed: stays in the flat run. nil node: wildcard
		// term, dropped (true ∧ x = x).
		if p.tok.kind != tokAnd {
			break
		}
		p.next()
	}
	if mixed {
		if len(kids) == 1 {
			return kids[0], nil
		}
		return andNode{kids: kids}, nil
	}
	run := p.preds[start:len(p.preds):len(p.preds)]
	switch len(run) {
	case 0:
		return nil, nil
	case 1:
		return predNode{run[0]}, nil
	}
	return conjNode{preds: run}, nil
}

// parseTerm parses one term. A bare predicate is appended to p.preds
// and reported with isPred = true (no node); parenthesized groups come
// back as nodes; a wildcard ("true") is a nil node with isPred = false.
func (p *parser) parseTerm() (n node, isPred bool, err error) {
	switch p.tok.kind {
	case tokLParen:
		mark := len(p.preds)
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, false, err
		}
		if p.tok.kind != tokRParen {
			return nil, false, p.errorf("expected ')', got %q", p.tok.text)
		}
		p.next()
		if inner == nil {
			// The group collapsed to a wildcard: every node built inside
			// it was discarded, so its predicates can be rewound (nothing
			// aliases them — the group's nodes were the only handles).
			p.preds = p.preds[:mark]
		}
		return inner, false, nil
	case tokIdent:
		if p.tok.text == "true" {
			p.next()
			// Wildcard term: represented by a nil node, collapsed by the
			// callers (true ∧ x = x, true ∨ x = true).
			return nil, false, nil
		}
		attr := p.tok.text
		p.next()
		if p.tok.kind != tokOp {
			return nil, false, p.errorf("expected comparison operator after %q, got %q", attr, p.tok.text)
		}
		op := p.tok.op
		p.next()
		var val Value
		switch p.tok.kind {
		case tokNumber:
			val = Num(p.tok.num)
		case tokString:
			val = Str(p.tok.text)
		default:
			return nil, false, p.errorf("expected value, got %q", p.tok.text)
		}
		p.next()
		p.preds = append(p.preds, Predicate{Attr: attr, Op: op, Val: val})
		return nil, true, nil
	case tokErr:
		return nil, false, p.errorf("bad token %q", p.tok.text)
	default:
		return nil, false, p.errorf("expected predicate or '(', got %q", p.tok.text)
	}
}
