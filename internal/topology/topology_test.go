package topology

import (
	"bytes"
	"math"
	"testing"

	"bdps/internal/msg"
	"bdps/internal/stats"
)

func rate(mean float64) stats.Normal { return stats.Normal{Mean: mean, Sigma: 20} }

func TestGraphAddAndQuery(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddLink(0, 1, rate(50)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, rate(60)); err != nil {
		t.Fatal(err)
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) {
		t.Error("AddLink must install both arcs")
	}
	if !g.HasArc(1, 2) || g.HasArc(2, 1) {
		t.Error("AddArc must install one arc")
	}
	if r, ok := g.Rate(0, 1); !ok || r.Mean != 50 {
		t.Error("Rate lookup failed")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if len(g.Arcs()) != 3 {
		t.Errorf("Arcs = %d, want 3", len(g.Arcs()))
	}
}

func TestGraphRejectsBadLinks(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddLink(0, 0, rate(50)); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddLink(0, 5, rate(50)); err == nil {
		t.Error("out-of-range node should fail")
	}
	if err := g.AddLink(-1, 0, rate(50)); err == nil {
		t.Error("negative node should fail")
	}
}

func TestGraphAddArcReplaces(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddArc(0, 1, rate(50))
	_ = g.AddArc(0, 1, rate(70))
	if r, _ := g.Rate(0, 1); r.Mean != 70 {
		t.Error("second AddArc should replace the rate")
	}
	if g.Degree(0) != 1 {
		t.Error("replacement must not duplicate the arc")
	}
}

func TestShortestPathSimpleChain(t *testing.T) {
	// 0 -50- 1 -60- 2, plus direct 0-2 at 200: chain wins.
	g := NewGraph(3)
	_ = g.AddLink(0, 1, rate(50))
	_ = g.AddLink(1, 2, rate(60))
	_ = g.AddLink(0, 2, rate(200))
	path, ok := g.Path(0, 2)
	if !ok {
		t.Fatal("no path found")
	}
	want := []msg.NodeID{0, 1, 2}
	if !samePath(path, want) {
		t.Errorf("path = %v, want %v", path, want)
	}
	dist, _ := g.ShortestPaths(0)
	if dist[2] != 110 {
		t.Errorf("dist = %v, want 110", dist[2])
	}
}

func TestShortestPathDirectWins(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddLink(0, 1, rate(80))
	_ = g.AddLink(1, 2, rate(80))
	_ = g.AddLink(0, 2, rate(100))
	path, _ := g.Path(0, 2)
	if !samePath(path, []msg.NodeID{0, 2}) {
		t.Errorf("path = %v, want direct", path)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddLink(0, 1, rate(50))
	_ = g.AddLink(2, 3, rate(50))
	if _, ok := g.Path(0, 3); ok {
		t.Error("disconnected nodes should have no path")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := NewGraph(2)
	_ = g.AddLink(0, 1, rate(50))
	path, ok := g.Path(0, 0)
	if !ok || len(path) != 1 || path[0] != 0 {
		t.Errorf("self path = %v, ok=%v", path, ok)
	}
}

// TestDijkstraOptimalityBruteForce checks Dijkstra against exhaustive
// path enumeration on small random graphs.
func TestDijkstraOptimalityBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		s := stats.NewStream(seed)
		n := 5 + s.IntN(3)
		g := NewGraph(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if s.Float64() < 0.5 {
					_ = g.AddLink(msg.NodeID(a), msg.NodeID(b), rate(s.Uniform(50, 100)))
				}
			}
		}
		dist, _ := g.ShortestPaths(0)
		best := bruteForceDistances(g, 0)
		for v := 0; v < n; v++ {
			got, want := dist[v], best[v]
			if math.IsInf(want, 1) {
				if got < unreachable {
					t.Fatalf("seed %d: node %d reachable by Dijkstra only", seed, v)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("seed %d: node %d dist %v, brute force %v", seed, v, got, want)
			}
		}
	}
}

func bruteForceDistances(g *Graph, src msg.NodeID) []float64 {
	n := g.N()
	best := make([]float64, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	visited := make([]bool, n)
	var dfs func(at msg.NodeID, cost float64)
	dfs = func(at msg.NodeID, cost float64) {
		if cost < best[at] {
			best[at] = cost
		}
		visited[at] = true
		for _, e := range g.Neighbors(at) {
			if !visited[e.To] {
				dfs(e.To, cost+e.Rate.Mean)
			}
		}
		visited[at] = false
	}
	dfs(src, 0)
	return best
}

func TestPathRateComposition(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddLink(0, 1, stats.Normal{Mean: 50, Sigma: 20})
	_ = g.AddLink(1, 2, stats.Normal{Mean: 70, Sigma: 20})
	r, ok := g.PathRate([]msg.NodeID{0, 1, 2})
	if !ok {
		t.Fatal("rate composition failed")
	}
	if r.Mean != 120 {
		t.Errorf("mean = %v, want 120", r.Mean)
	}
	if math.Abs(r.Sigma-math.Sqrt(800)) > 1e-12 {
		t.Errorf("sigma = %v, want sqrt(800)", r.Sigma)
	}
	if _, ok := g.PathRate([]msg.NodeID{0, 2}); ok {
		t.Error("unlinked pair should fail")
	}
}

func TestKShortestPaths(t *testing.T) {
	// Diamond: 0-1-3 (cost 100), 0-2-3 (cost 120), 0-3 direct (cost 300).
	g := NewGraph(4)
	_ = g.AddLink(0, 1, rate(50))
	_ = g.AddLink(1, 3, rate(50))
	_ = g.AddLink(0, 2, rate(60))
	_ = g.AddLink(2, 3, rate(60))
	_ = g.AddLink(0, 3, rate(300))
	paths := g.KShortestPaths(0, 3, 3)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(paths), paths)
	}
	if !samePath(paths[0], []msg.NodeID{0, 1, 3}) {
		t.Errorf("1st path %v", paths[0])
	}
	if !samePath(paths[1], []msg.NodeID{0, 2, 3}) {
		t.Errorf("2nd path %v", paths[1])
	}
	if !samePath(paths[2], []msg.NodeID{0, 3}) {
		t.Errorf("3rd path %v", paths[2])
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddLink(0, 1, rate(50))
	_ = g.AddLink(1, 2, rate(50))
	_ = g.AddLink(2, 3, rate(50))
	_ = g.AddLink(1, 3, rate(90))
	paths := g.KShortestPaths(0, 3, 10)
	for _, p := range paths {
		seen := make(map[msg.NodeID]bool)
		for _, n := range p {
			if seen[n] {
				t.Fatalf("path %v revisits %d", p, n)
			}
			seen[n] = true
		}
	}
	if len(paths) != 2 {
		t.Errorf("got %d loopless paths, want 2", len(paths))
	}
}

func TestBuildLayeredPaperShape(t *testing.T) {
	ov, err := BuildLayered(LayeredConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ov.Graph.N() != 32 {
		t.Fatalf("N = %d, want 32", ov.Graph.N())
	}
	if len(ov.Ingress) != 4 || len(ov.Edges) != 16 {
		t.Fatalf("ingress=%d edges=%d, want 4/16", len(ov.Ingress), len(ov.Edges))
	}
	if len(ov.Layers) != 4 {
		t.Fatalf("layers = %d, want 4", len(ov.Layers))
	}
	// Layer 2 fully connected to layer 1.
	for _, b2 := range ov.Layers[1] {
		for _, b1 := range ov.Layers[0] {
			if !ov.Graph.HasArc(b1, b2) {
				t.Errorf("missing L1-L2 link %d-%d", b1, b2)
			}
		}
	}
	// Layers 3 and 4: exactly 2 parents each.
	for li := 2; li < 4; li++ {
		parentSet := make(map[msg.NodeID]bool)
		for _, p := range ov.Layers[li-1] {
			parentSet[p] = true
		}
		for _, b := range ov.Layers[li] {
			parents := 0
			for _, e := range ov.Graph.Neighbors(b) {
				if parentSet[e.To] {
					parents++
				}
			}
			if parents != 2 {
				t.Errorf("layer %d broker %d has %d parents, want 2", li+1, b, parents)
			}
		}
	}
	// Link rates within the configured band.
	for _, arc := range ov.Graph.Arcs() {
		r, _ := ov.Graph.Rate(arc[0], arc[1])
		if r.Mean < 50 || r.Mean >= 100 || r.Sigma != 20 {
			t.Fatalf("link %v has rate %v outside config", arc, r)
		}
	}
}

func TestBuildLayeredDeterministic(t *testing.T) {
	a, err := BuildLayered(LayeredConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLayered(LayeredConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	arcsA, arcsB := a.Graph.Arcs(), b.Graph.Arcs()
	if len(arcsA) != len(arcsB) {
		t.Fatal("different arc counts for same seed")
	}
	for i := range arcsA {
		if arcsA[i] != arcsB[i] {
			t.Fatal("different wiring for same seed")
		}
		ra, _ := a.Graph.Rate(arcsA[i][0], arcsA[i][1])
		rb, _ := b.Graph.Rate(arcsB[i][0], arcsB[i][1])
		if ra != rb {
			t.Fatal("different rates for same seed")
		}
	}
	c, err := BuildLayered(LayeredConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Graph.Arcs()) == len(arcsA) {
		same := true
		for i, arc := range c.Graph.Arcs() {
			if arc != arcsA[i] {
				same = false
				break
			}
			rc, _ := c.Graph.Rate(arc[0], arc[1])
			ra, _ := a.Graph.Rate(arc[0], arc[1])
			if rc != ra {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds should give different overlays")
		}
	}
}

func TestBuildLayeredRejectsBadConfig(t *testing.T) {
	if _, err := BuildLayered(LayeredConfig{LayerSizes: []int{4}}); err == nil {
		t.Error("single layer should fail")
	}
	if _, err := BuildLayered(LayeredConfig{LayerSizes: []int{4, 0}}); err == nil {
		t.Error("zero-size layer should fail")
	}
}

func TestBuildAcyclicIsTree(t *testing.T) {
	ov, err := BuildAcyclic(AcyclicConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tree: exactly n-1 undirected links = 2(n-1) arcs.
	if got, want := len(ov.Graph.Arcs()), 2*(ov.Graph.N()-1); got != want {
		t.Errorf("arcs = %d, want %d", got, want)
	}
	// Exactly one path between any ingress and edge (tree property checked
	// via KShortestPaths returning a single loopless path).
	paths := ov.Graph.KShortestPaths(ov.Ingress[0], ov.Edges[0], 5)
	if len(paths) != 1 {
		t.Errorf("tree should have exactly 1 path, got %d", len(paths))
	}
}

func TestBuildAcyclicRejectsBadConfig(t *testing.T) {
	if _, err := BuildAcyclic(AcyclicConfig{Brokers: 8, Ingress: 6, EdgeCount: 6}); err == nil {
		t.Error("overlapping roles should fail")
	}
	if _, err := BuildAcyclic(AcyclicConfig{Brokers: 1, Ingress: 1, EdgeCount: 1}); err == nil {
		t.Error("too-small tree should fail")
	}
}

func TestBuildMeshConnectedWithChords(t *testing.T) {
	ov, err := BuildMesh(MeshConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ov.Graph.Arcs()); got <= 2*(ov.Graph.N()-1) {
		t.Errorf("mesh should have chords beyond the tree: %d arcs", got)
	}
	if err := ov.Validate(); err != nil {
		t.Errorf("mesh should validate: %v", err)
	}
}

func TestOverlayValidateCatchesUnreachable(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddLink(0, 1, rate(50))
	ov := &Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{2}}
	if err := ov.Validate(); err == nil {
		t.Error("unreachable edge broker should fail validation")
	}
}

func TestOverlayJSONRoundTrip(t *testing.T) {
	ov, err := BuildLayered(LayeredConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ov.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.N() != ov.Graph.N() || got.Name != ov.Name {
		t.Fatal("basic fields lost")
	}
	if len(got.Ingress) != len(ov.Ingress) || len(got.Edges) != len(ov.Edges) {
		t.Fatal("roles lost")
	}
	for _, arc := range ov.Graph.Arcs() {
		want, _ := ov.Graph.Rate(arc[0], arc[1])
		gotRate, ok := got.Graph.Rate(arc[0], arc[1])
		if !ok || gotRate != want {
			t.Fatalf("arc %v rate mismatch: %v vs %v", arc, gotRate, want)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"nodes":0}`)); err == nil {
		t.Error("zero nodes should fail")
	}
}
