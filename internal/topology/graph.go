// Package topology models the broker overlay network: a graph whose links
// carry per-kilobyte transmission-time distributions (paper §3.2), builders
// for the paper's layered mesh (§6.1, Figure 3) and for the alternative
// acyclic and random-mesh shapes (§3.1), and the shortest-path machinery
// behind the single-path routing protocol (§3.3): minimize the mean value
// of the transmission rate of the path.
package topology

import (
	"fmt"
	"sort"

	"bdps/internal/msg"
	"bdps/internal/stats"
)

// Edge is one directed use of an overlay link.
type Edge struct {
	To   msg.NodeID
	Rate stats.Normal // per-KB transmission time, ms/KB
}

// Graph is a broker overlay graph. Nodes are dense ids [0, N). Links are
// stored as directed arcs; AddLink installs both directions with the same
// rate distribution (an overlay link is one TCP connection).
type Graph struct {
	adj [][]Edge
}

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// valid reports whether id names a node.
func (g *Graph) valid(id msg.NodeID) bool {
	return id >= 0 && int(id) < len(g.adj)
}

// AddArc installs a directed link a→b. It replaces the rate if the arc
// already exists.
func (g *Graph) AddArc(a, b msg.NodeID, rate stats.Normal) error {
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: arc %d->%d out of range [0,%d)", a, b, g.N())
	}
	if a == b {
		return fmt.Errorf("topology: self-loop at node %d", a)
	}
	for i := range g.adj[a] {
		if g.adj[a][i].To == b {
			g.adj[a][i].Rate = rate
			return nil
		}
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Rate: rate})
	return nil
}

// AddLink installs an undirected link (both arcs) with one rate
// distribution.
func (g *Graph) AddLink(a, b msg.NodeID, rate stats.Normal) error {
	if err := g.AddArc(a, b, rate); err != nil {
		return err
	}
	return g.AddArc(b, a, rate)
}

// RemoveArc deletes the directed link a→b, reporting whether it existed.
// The topology-repair layer prunes confirmed-dead arcs with it; removing
// a missing arc is a no-op so repair events stay idempotent.
func (g *Graph) RemoveArc(a, b msg.NodeID) bool {
	if !g.valid(a) {
		return false
	}
	for i := range g.adj[a] {
		if g.adj[a][i].To == b {
			g.adj[a] = append(g.adj[a][:i], g.adj[a][i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph. Repair works on a clone so the
// original deployment topology stays intact as the ground truth to
// restore recovered links from.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj))}
	for i, edges := range g.adj {
		if len(edges) == 0 {
			continue
		}
		c.adj[i] = append(make([]Edge, 0, len(edges)), edges...)
	}
	return c
}

// Neighbors returns the outgoing edges of a in insertion order. The slice
// is shared; callers must not mutate it.
func (g *Graph) Neighbors(a msg.NodeID) []Edge {
	if !g.valid(a) {
		return nil
	}
	return g.adj[a]
}

// Rate returns the rate distribution of arc a→b.
func (g *Graph) Rate(a, b msg.NodeID) (stats.Normal, bool) {
	if !g.valid(a) {
		return stats.Normal{}, false
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return e.Rate, true
		}
	}
	return stats.Normal{}, false
}

// HasArc reports whether the directed link a→b exists.
func (g *Graph) HasArc(a, b msg.NodeID) bool {
	_, ok := g.Rate(a, b)
	return ok
}

// Arcs returns every directed link as (from, to) pairs in deterministic
// order.
func (g *Graph) Arcs() [][2]msg.NodeID {
	var out [][2]msg.NodeID
	for a := range g.adj {
		for _, e := range g.adj[a] {
			out = append(out, [2]msg.NodeID{msg.NodeID(a), e.To})
		}
	}
	return out
}

// Degree returns the out-degree of a node.
func (g *Graph) Degree(a msg.NodeID) int { return len(g.Neighbors(a)) }

// Overlay is a graph plus the roles the pub/sub system assigns to nodes:
// ingress brokers host publishers, edge brokers host subscribers. A node
// may be both (acyclic topologies allow any broker to serve both sides,
// §3.1).
type Overlay struct {
	Graph   *Graph
	Ingress []msg.NodeID   // brokers that accept published messages
	Edges   []msg.NodeID   // brokers that serve subscribers
	Layers  [][]msg.NodeID // optional layer annotation (layered builder)
	Name    string         // builder label, for reports
}

// Validate checks internal consistency: roles reference valid nodes and
// the graph is connected enough that every (ingress, edge) pair has a
// path.
func (o *Overlay) Validate() error {
	for _, id := range o.Ingress {
		if !o.Graph.valid(id) {
			return fmt.Errorf("topology: ingress %d out of range", id)
		}
	}
	for _, id := range o.Edges {
		if !o.Graph.valid(id) {
			return fmt.Errorf("topology: edge %d out of range", id)
		}
	}
	for _, in := range o.Ingress {
		dist, _ := o.Graph.ShortestPaths(in)
		for _, e := range o.Edges {
			if dist[e] >= unreachable {
				return fmt.Errorf("topology: edge broker %d unreachable from ingress %d", e, in)
			}
		}
	}
	return nil
}

// sortNodeIDs sorts a node id slice in place (deterministic outputs).
func sortNodeIDs(ids []msg.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
