package topology

import (
	"fmt"

	"bdps/internal/msg"
	"bdps/internal/stats"
)

// LayeredConfig parameterizes the paper's simulated broker network
// (§6.1, Figure 3). The defaults reproduce it exactly: 32 brokers in 4
// layers {4, 4, 8, 16}; layer 1 hosts one publisher per broker; layer 2 is
// fully connected to layer 1; each broker of layers 3 and 4 connects to
// FanIn random brokers of the previous layer; layer 4 brokers each serve
// subscribers. Link mean rates are uniform in [RateMeanLo, RateMeanHi]
// ms/KB with standard deviation RateSigma.
type LayeredConfig struct {
	Seed       uint64
	LayerSizes []int   // default {4, 4, 8, 16}
	FanIn      int     // parents per node in layers >= 3; default 2
	RateMeanLo float64 // default 50 ms/KB
	RateMeanHi float64 // default 100 ms/KB
	RateSigma  float64 // default 20 ms/KB
}

func (c *LayeredConfig) setDefaults() {
	if len(c.LayerSizes) == 0 {
		c.LayerSizes = []int{4, 4, 8, 16}
	}
	if c.FanIn <= 0 {
		c.FanIn = 2
	}
	if c.RateMeanLo == 0 && c.RateMeanHi == 0 {
		c.RateMeanLo, c.RateMeanHi = 50, 100
	}
	if c.RateSigma == 0 {
		c.RateSigma = 20
	}
}

// BuildLayered constructs the layered-mesh overlay. The same seed always
// yields the same overlay (random parent choices and link rates come from
// streams derived from it).
func BuildLayered(cfg LayeredConfig) (*Overlay, error) {
	cfg.setDefaults()
	if len(cfg.LayerSizes) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 layers, got %d", len(cfg.LayerSizes))
	}
	total := 0
	layers := make([][]msg.NodeID, len(cfg.LayerSizes))
	for i, sz := range cfg.LayerSizes {
		if sz <= 0 {
			return nil, fmt.Errorf("topology: layer %d has size %d", i, sz)
		}
		layers[i] = make([]msg.NodeID, sz)
		for j := 0; j < sz; j++ {
			layers[i][j] = msg.NodeID(total + j)
		}
		total += sz
	}

	g := NewGraph(total)
	wire := stats.Derive(cfg.Seed, "topology/wiring")
	rates := stats.Derive(cfg.Seed, "topology/rates")
	newRate := func() stats.Normal {
		return stats.Normal{Mean: rates.Uniform(cfg.RateMeanLo, cfg.RateMeanHi), Sigma: cfg.RateSigma}
	}

	// Layer 2 is fully connected to layer 1.
	for _, b2 := range layers[1] {
		for _, b1 := range layers[0] {
			if err := g.AddLink(b1, b2, newRate()); err != nil {
				return nil, err
			}
		}
	}
	// Layers >= 3: FanIn random distinct parents in the previous layer.
	for li := 2; li < len(layers); li++ {
		parents := layers[li-1]
		fan := cfg.FanIn
		if fan > len(parents) {
			fan = len(parents)
		}
		for _, b := range layers[li] {
			perm := wire.Perm(len(parents))
			for _, pi := range perm[:fan] {
				if err := g.AddLink(parents[pi], b, newRate()); err != nil {
					return nil, err
				}
			}
		}
	}

	ov := &Overlay{
		Graph:   g,
		Ingress: append([]msg.NodeID(nil), layers[0]...),
		Edges:   append([]msg.NodeID(nil), layers[len(layers)-1]...),
		Layers:  layers,
		Name:    "layered-mesh",
	}
	sortNodeIDs(ov.Ingress)
	sortNodeIDs(ov.Edges)
	return ov, ov.Validate()
}

// AcyclicConfig parameterizes a random-tree overlay, the alternative
// topology of §3.1 (Siena/JEDI/Rebeca style), where any broker can serve
// both publishers and subscribers and exactly one path exists between any
// broker pair.
type AcyclicConfig struct {
	Seed       uint64
	Brokers    int     // default 32
	Ingress    int     // brokers (lowest ids) hosting publishers; default 4
	EdgeCount  int     // brokers (highest ids) hosting subscribers; default 16
	RateMeanLo float64 // default 50
	RateMeanHi float64 // default 100
	RateSigma  float64 // default 20
}

func (c *AcyclicConfig) setDefaults() {
	if c.Brokers == 0 {
		c.Brokers = 32
	}
	if c.Ingress == 0 {
		c.Ingress = 4
	}
	if c.EdgeCount == 0 {
		c.EdgeCount = 16
	}
	if c.RateMeanLo == 0 && c.RateMeanHi == 0 {
		c.RateMeanLo, c.RateMeanHi = 50, 100
	}
	if c.RateSigma == 0 {
		c.RateSigma = 20
	}
}

// BuildAcyclic constructs a uniformly random tree: node i (i >= 1)
// attaches to a random earlier node.
func BuildAcyclic(cfg AcyclicConfig) (*Overlay, error) {
	cfg.setDefaults()
	if cfg.Brokers < 2 {
		return nil, fmt.Errorf("topology: acyclic overlay needs >= 2 brokers")
	}
	if cfg.Ingress+cfg.EdgeCount > cfg.Brokers {
		return nil, fmt.Errorf("topology: %d ingress + %d edge brokers exceed %d total",
			cfg.Ingress, cfg.EdgeCount, cfg.Brokers)
	}
	g := NewGraph(cfg.Brokers)
	wire := stats.Derive(cfg.Seed, "topology/tree")
	rates := stats.Derive(cfg.Seed, "topology/tree-rates")
	for i := 1; i < cfg.Brokers; i++ {
		parent := msg.NodeID(wire.IntN(i))
		rate := stats.Normal{Mean: rates.Uniform(cfg.RateMeanLo, cfg.RateMeanHi), Sigma: cfg.RateSigma}
		if err := g.AddLink(parent, msg.NodeID(i), rate); err != nil {
			return nil, err
		}
	}
	ov := &Overlay{Graph: g, Name: "acyclic-tree"}
	for i := 0; i < cfg.Ingress; i++ {
		ov.Ingress = append(ov.Ingress, msg.NodeID(i))
	}
	for i := cfg.Brokers - cfg.EdgeCount; i < cfg.Brokers; i++ {
		ov.Edges = append(ov.Edges, msg.NodeID(i))
	}
	return ov, ov.Validate()
}

// MeshConfig parameterizes a random connected mesh: a random spanning tree
// plus ExtraLinks random chords, for robustness and multi-path
// experiments.
type MeshConfig struct {
	Seed       uint64
	Brokers    int // default 32
	ExtraLinks int // default Brokers
	Ingress    int // default 4
	EdgeCount  int // default 16
	RateMeanLo float64
	RateMeanHi float64
	RateSigma  float64
}

func (c *MeshConfig) setDefaults() {
	if c.Brokers == 0 {
		c.Brokers = 32
	}
	if c.ExtraLinks == 0 {
		c.ExtraLinks = c.Brokers
	}
	if c.Ingress == 0 {
		c.Ingress = 4
	}
	if c.EdgeCount == 0 {
		c.EdgeCount = 16
	}
	if c.RateMeanLo == 0 && c.RateMeanHi == 0 {
		c.RateMeanLo, c.RateMeanHi = 50, 100
	}
	if c.RateSigma == 0 {
		c.RateSigma = 20
	}
}

// BuildMesh constructs the random connected mesh.
func BuildMesh(cfg MeshConfig) (*Overlay, error) {
	cfg.setDefaults()
	if cfg.Brokers < 2 {
		return nil, fmt.Errorf("topology: mesh needs >= 2 brokers")
	}
	if cfg.Ingress+cfg.EdgeCount > cfg.Brokers {
		return nil, fmt.Errorf("topology: %d ingress + %d edge brokers exceed %d total",
			cfg.Ingress, cfg.EdgeCount, cfg.Brokers)
	}
	g := NewGraph(cfg.Brokers)
	wire := stats.Derive(cfg.Seed, "topology/mesh")
	rates := stats.Derive(cfg.Seed, "topology/mesh-rates")
	newRate := func() stats.Normal {
		return stats.Normal{Mean: rates.Uniform(cfg.RateMeanLo, cfg.RateMeanHi), Sigma: cfg.RateSigma}
	}
	for i := 1; i < cfg.Brokers; i++ {
		parent := msg.NodeID(wire.IntN(i))
		if err := g.AddLink(parent, msg.NodeID(i), newRate()); err != nil {
			return nil, err
		}
	}
	added := 0
	for attempts := 0; added < cfg.ExtraLinks && attempts < cfg.ExtraLinks*20; attempts++ {
		a := msg.NodeID(wire.IntN(cfg.Brokers))
		b := msg.NodeID(wire.IntN(cfg.Brokers))
		if a == b || g.HasArc(a, b) {
			continue
		}
		if err := g.AddLink(a, b, newRate()); err != nil {
			return nil, err
		}
		added++
	}
	ov := &Overlay{Graph: g, Name: "random-mesh"}
	for i := 0; i < cfg.Ingress; i++ {
		ov.Ingress = append(ov.Ingress, msg.NodeID(i))
	}
	for i := cfg.Brokers - cfg.EdgeCount; i < cfg.Brokers; i++ {
		ov.Edges = append(ov.Edges, msg.NodeID(i))
	}
	return ov, ov.Validate()
}
