package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"bdps/internal/msg"
	"bdps/internal/stats"
)

// JSON wire form of an overlay, used by the CLI tools and the live
// runtime's configuration files.
type overlayJSON struct {
	Name    string         `json:"name"`
	Nodes   int            `json:"nodes"`
	Links   []linkJSON     `json:"links"`
	Ingress []msg.NodeID   `json:"ingress"`
	Edges   []msg.NodeID   `json:"edges"`
	Layers  [][]msg.NodeID `json:"layers,omitempty"`
}

type linkJSON struct {
	A     msg.NodeID `json:"a"`
	B     msg.NodeID `json:"b"`
	Mean  float64    `json:"mean_ms_per_kb"`
	Sigma float64    `json:"sigma_ms_per_kb"`
}

// WriteJSON serializes the overlay. Undirected links are emitted once
// (a < b) when both arcs carry the same distribution; asymmetric arcs are
// emitted individually with A/B in arc direction.
func (o *Overlay) WriteJSON(w io.Writer) error {
	oj := overlayJSON{
		Name:    o.Name,
		Nodes:   o.Graph.N(),
		Ingress: o.Ingress,
		Edges:   o.Edges,
		Layers:  o.Layers,
	}
	seen := make(map[[2]msg.NodeID]bool)
	for _, arc := range o.Graph.Arcs() {
		a, b := arc[0], arc[1]
		ra, _ := o.Graph.Rate(a, b)
		rb, okBack := o.Graph.Rate(b, a)
		if okBack && ra == rb {
			key := [2]msg.NodeID{min(a, b), max(a, b)}
			if seen[key] {
				continue
			}
			seen[key] = true
			oj.Links = append(oj.Links, linkJSON{A: key[0], B: key[1], Mean: ra.Mean, Sigma: ra.Sigma})
			continue
		}
		oj.Links = append(oj.Links, linkJSON{A: a, B: b, Mean: ra.Mean, Sigma: ra.Sigma})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(oj)
}

// ReadJSON deserializes an overlay written by WriteJSON. Links are
// installed undirected (matching WriteJSON's symmetric-link folding; an
// asymmetric pair appears as two entries and the second overwrites the
// reverse arc's rate, preserving both directions).
func ReadJSON(r io.Reader) (*Overlay, error) {
	var oj overlayJSON
	if err := json.NewDecoder(r).Decode(&oj); err != nil {
		return nil, fmt.Errorf("topology: decoding overlay: %w", err)
	}
	if oj.Nodes <= 0 {
		return nil, fmt.Errorf("topology: overlay has %d nodes", oj.Nodes)
	}
	g := NewGraph(oj.Nodes)
	for _, l := range oj.Links {
		rate := stats.Normal{Mean: l.Mean, Sigma: l.Sigma}
		if err := g.AddLink(l.A, l.B, rate); err != nil {
			return nil, err
		}
	}
	ov := &Overlay{
		Graph:   g,
		Ingress: oj.Ingress,
		Edges:   oj.Edges,
		Layers:  oj.Layers,
		Name:    oj.Name,
	}
	return ov, ov.Validate()
}

func min(a, b msg.NodeID) msg.NodeID {
	if a < b {
		return a
	}
	return b
}

func max(a, b msg.NodeID) msg.NodeID {
	if a > b {
		return a
	}
	return b
}
