package topology

import (
	"container/heap"
	"math"

	"bdps/internal/msg"
	"bdps/internal/stats"
)

// unreachable is the distance assigned to nodes with no path.
const unreachable = math.MaxFloat64

// ShortestPaths runs Dijkstra from src with edge weight = mean per-KB
// transmission time, the paper's path-selection criterion ("minimize the
// mean value of the transmission rate of the path", §3.3). It returns the
// distance to every node (unreachable = MaxFloat64) and the predecessor
// array. Ties are broken toward the smaller predecessor id, making routes
// deterministic for a given graph.
func (g *Graph) ShortestPaths(src msg.NodeID) (dist []float64, prev []msg.NodeID) {
	n := g.N()
	dist = make([]float64, n)
	prev = make([]msg.NodeID, n)
	for i := range dist {
		dist[i] = unreachable
		prev[i] = msg.None
	}
	if !g.valid(src) {
		return dist, prev
	}
	dist[src] = 0

	pq := &nodeHeap{{id: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.dist > dist[it.id] {
			continue // stale entry
		}
		for _, e := range g.adj[it.id] {
			nd := it.dist + e.Rate.Mean
			switch {
			case nd < dist[e.To]:
				dist[e.To] = nd
				prev[e.To] = it.id
				heap.Push(pq, nodeItem{id: e.To, dist: nd})
			case nd == dist[e.To] && it.id < prev[e.To]:
				prev[e.To] = it.id
			}
		}
	}
	return dist, prev
}

// Path returns the node sequence of the best path src..dst inclusive,
// or ok=false if dst is unreachable.
func (g *Graph) Path(src, dst msg.NodeID) (path []msg.NodeID, ok bool) {
	if !g.valid(src) || !g.valid(dst) {
		return nil, false
	}
	dist, prev := g.ShortestPaths(src)
	return extractPath(dist, prev, src, dst)
}

func extractPath(dist []float64, prev []msg.NodeID, src, dst msg.NodeID) ([]msg.NodeID, bool) {
	if dist[dst] >= unreachable {
		return nil, false
	}
	var rev []msg.NodeID
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
		if prev[at] == msg.None {
			return nil, false
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// PathRate composes the per-KB transmission-time distribution of a path:
// the sum of independent link normals, TR_p ~ N(Σμ, Σσ²). It returns
// ok=false if any consecutive pair is not linked.
func (g *Graph) PathRate(path []msg.NodeID) (stats.Normal, bool) {
	var parts []stats.Normal
	for i := 0; i+1 < len(path); i++ {
		r, ok := g.Rate(path[i], path[i+1])
		if !ok {
			return stats.Normal{}, false
		}
		parts = append(parts, r)
	}
	return stats.SumNormal(parts...), true
}

// KShortestPaths returns up to k loopless paths src→dst ordered by total
// mean rate (Yen's algorithm). It is the substrate for the multi-path
// routing extension (§3.3 cites DCP-style multi-path forwarding).
func (g *Graph) KShortestPaths(src, dst msg.NodeID, k int) [][]msg.NodeID {
	if k <= 0 {
		return nil
	}
	first, ok := g.Path(src, dst)
	if !ok {
		return nil
	}
	paths := [][]msg.NodeID{first}
	var candidates []weightedPath

	for len(paths) < k {
		last := paths[len(paths)-1]
		for i := 0; i < len(last)-1; i++ {
			spurNode := last[i]
			rootPath := last[:i+1]

			// Build a filtered graph: remove arcs used by previous paths
			// sharing this root, and remove root nodes except the spur.
			banned := make(map[[2]msg.NodeID]bool)
			for _, p := range paths {
				if len(p) > i && samePath(p[:i+1], rootPath) {
					banned[[2]msg.NodeID{p[i], p[i+1]}] = true
				}
			}
			removed := make(map[msg.NodeID]bool)
			for _, nid := range rootPath[:len(rootPath)-1] {
				removed[nid] = true
			}

			spurPath, ok := g.constrainedPath(spurNode, dst, banned, removed)
			if !ok {
				continue
			}
			total := append(append([]msg.NodeID{}, rootPath[:len(rootPath)-1]...), spurPath...)
			if containsPath(paths, total) || containsCandidate(candidates, total) {
				continue
			}
			rate, ok := g.PathRate(total)
			if !ok {
				continue
			}
			candidates = append(candidates, weightedPath{path: total, mean: rate.Mean})
		}
		if len(candidates) == 0 {
			break
		}
		// Pop the cheapest candidate (ties toward lexicographically
		// smaller path for determinism).
		best := 0
		for i := 1; i < len(candidates); i++ {
			if candidates[i].less(candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best].path)
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

type weightedPath struct {
	path []msg.NodeID
	mean float64
}

func (w weightedPath) less(o weightedPath) bool {
	if w.mean != o.mean {
		return w.mean < o.mean
	}
	return lessPath(w.path, o.path)
}

func lessPath(a, b []msg.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func samePath(a, b []msg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(paths [][]msg.NodeID, p []msg.NodeID) bool {
	for _, q := range paths {
		if samePath(p, q) {
			return true
		}
	}
	return false
}

func containsCandidate(cs []weightedPath, p []msg.NodeID) bool {
	for _, c := range cs {
		if samePath(c.path, p) {
			return true
		}
	}
	return false
}

// constrainedPath is Dijkstra avoiding banned arcs and removed nodes.
func (g *Graph) constrainedPath(src, dst msg.NodeID, banned map[[2]msg.NodeID]bool, removed map[msg.NodeID]bool) ([]msg.NodeID, bool) {
	n := g.N()
	dist := make([]float64, n)
	prev := make([]msg.NodeID, n)
	for i := range dist {
		dist[i] = unreachable
		prev[i] = msg.None
	}
	if removed[src] || removed[dst] {
		return nil, false
	}
	dist[src] = 0
	pq := &nodeHeap{{id: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.dist > dist[it.id] {
			continue
		}
		for _, e := range g.adj[it.id] {
			if removed[e.To] || banned[[2]msg.NodeID{it.id, e.To}] {
				continue
			}
			nd := it.dist + e.Rate.Mean
			if nd < dist[e.To] || (nd == dist[e.To] && it.id < prev[e.To]) {
				if nd < dist[e.To] {
					heap.Push(pq, nodeItem{id: e.To, dist: nd})
				}
				dist[e.To] = nd
				prev[e.To] = it.id
			}
		}
	}
	return extractPath(dist, prev, src, dst)
}

// nodeItem and nodeHeap implement the Dijkstra priority queue with
// deterministic (dist, id) ordering.
type nodeItem struct {
	id   msg.NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
