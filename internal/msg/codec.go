package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"bdps/internal/filter"
)

// Wire format (big endian), used by the live TCP runtime:
//
//	frame   := magic(2) version(1) type(1) bodyLen(4) body
//	message := id(8) publisher(4) ingress(4) published(8) allowed(8)
//	           sizeKB(8) nattrs(2) attr* payloadLen(4) payload
//	attr    := nameLen(1) name kind(1) ( num(8) | strLen(2) str )
//	sub     := id(4) edge(4) deadline(8) price(8) filterLen(2) filterSrc
//
// Floats are IEEE-754 bit patterns. Limits below bound every length field
// so a corrupt or hostile frame cannot trigger a huge allocation.

// Frame type identifiers.
const (
	FrameMessage     = 0x01
	FrameSubscribe   = 0x02
	FrameAck         = 0x03
	FrameHello       = 0x04
	FrameUnsubscribe = 0x05
	FrameHeartbeat   = 0x06
	// FrameData carries a message on a reliable broker-to-broker link:
	// seq(8) base(8) message. seq is the link-local sequence number; base
	// is the sender's lowest still-live sequence (the receiver must not
	// wait for anything below it).
	FrameData = 0x07
	// FrameDataDrop is a FrameData the injected loss shim mangled in
	// flight: same body, delivered only so the wire totals balance, then
	// discarded — the receiver treats it as a vanished transmission.
	FrameDataDrop = 0x08
	// FrameResume is a subscriber's session-resumption request: after a
	// disconnect it re-attaches to its edge broker with its resume token
	// — subscription id + last delivered sequence — and the broker
	// replays only the buffered messages above that sequence whose
	// remaining slack still admits an in-bound delivery.
	FrameResume = 0x09
)

// Hello roles: the first frame on every live-runtime connection declares
// who is connecting.
const (
	RoleBroker     = 0x01
	RolePublisher  = 0x02
	RoleSubscriber = 0x03
)

// AppendHello appends a hello body: role byte + node id + the sender's
// incarnation epoch (0 for clients and never-restarted brokers).
func AppendHello(dst []byte, role byte, id NodeID, epoch uint32) []byte {
	dst = append(dst, role)
	dst = binary.BigEndian.AppendUint32(dst, uint32(id))
	return binary.BigEndian.AppendUint32(dst, epoch)
}

// DecodeHello parses a hello body. The 5-byte epoch-less form of wire
// generations before crash-restart durability decodes as epoch 0.
func DecodeHello(body []byte) (role byte, id NodeID, epoch uint32, err error) {
	switch len(body) {
	case 5:
	case 9:
		epoch = binary.BigEndian.Uint32(body[5:])
	default:
		return 0, 0, 0, fmt.Errorf("%w: hello body %d bytes", ErrCorrupt, len(body))
	}
	return body[0], NodeID(binary.BigEndian.Uint32(body[1:])), epoch, nil
}

// AppendHeartbeat appends a heartbeat body: the sending broker's id and
// its incarnation epoch. Heartbeats are per-link liveness probes; the
// receiver tracks the last time it heard each neighbor and declares the
// link dead after a configurable silence. The epoch lets it reject
// probes from a stale incarnation of a restarted peer.
func AppendHeartbeat(dst []byte, id NodeID, epoch uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(id))
	return binary.BigEndian.AppendUint32(dst, epoch)
}

// DecodeHeartbeat parses a heartbeat body (the 4-byte epoch-less legacy
// form decodes as epoch 0).
func DecodeHeartbeat(body []byte) (NodeID, uint32, error) {
	switch len(body) {
	case 4:
		return NodeID(binary.BigEndian.Uint32(body)), 0, nil
	case 8:
		return NodeID(binary.BigEndian.Uint32(body)), binary.BigEndian.Uint32(body[4:]), nil
	}
	return 0, 0, fmt.Errorf("%w: heartbeat body %d bytes", ErrCorrupt, len(body))
}

// AppendUnsubscribe appends an unsubscribe body: the subscription id.
func AppendUnsubscribe(dst []byte, id SubID) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(id))
}

// DecodeUnsubscribe parses an unsubscribe body.
func DecodeUnsubscribe(body []byte) (SubID, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: unsubscribe body %d bytes", ErrCorrupt, len(body))
	}
	return SubID(binary.BigEndian.Uint32(body)), nil
}

// DataHdrLen is the fixed prefix a FrameData body carries before the
// message encoding: seq(8) base(8) epoch(4).
const DataHdrLen = 20

// AppendDataHeader appends the reliable-link data prefix: seq(8) base(8)
// epoch(4). The message body encoding (AppendMessage) follows it. The
// epoch is the sender's incarnation; a receiver that has heard a newer
// incarnation of the same peer rejects the frame as stale.
func AppendDataHeader(dst []byte, seq, base uint64, epoch uint32) []byte {
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, base)
	return binary.BigEndian.AppendUint32(dst, epoch)
}

// DecodeDataHeader splits a FrameData body into its sequence numbers,
// the sender's incarnation epoch, and the message body that follows
// (aliasing body, not copying).
func DecodeDataHeader(body []byte) (seq, base uint64, epoch uint32, msgBody []byte, err error) {
	if len(body) < DataHdrLen {
		return 0, 0, 0, nil, fmt.Errorf("%w: data body %d bytes", ErrCorrupt, len(body))
	}
	seq = binary.BigEndian.Uint64(body)
	base = binary.BigEndian.Uint64(body[8:])
	epoch = binary.BigEndian.Uint32(body[16:])
	if base > seq {
		return 0, 0, 0, nil, fmt.Errorf("%w: data base %d above seq %d", ErrCorrupt, base, seq)
	}
	return seq, base, epoch, body[DataHdrLen:], nil
}

// ResumeBodyLen is the fixed size of a FrameResume body: subID(4)
// lastSeq(8).
const ResumeBodyLen = 12

// AppendResume appends a session-resumption body: the subscription id
// (doubling as the session id) and the last delivery sequence the
// subscriber actually received.
func AppendResume(dst []byte, sub SubID, lastSeq uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(sub))
	return binary.BigEndian.AppendUint64(dst, lastSeq)
}

// DecodeResume parses a session-resumption body.
func DecodeResume(body []byte) (sub SubID, lastSeq uint64, err error) {
	if len(body) != ResumeBodyLen {
		return 0, 0, fmt.Errorf("%w: resume body %d bytes", ErrCorrupt, len(body))
	}
	return SubID(binary.BigEndian.Uint32(body)), binary.BigEndian.Uint64(body[4:]), nil
}

// AppendAck appends a cumulative-ack body: every sequence ≤ cum has been
// accepted by the receiver, so the sender may trim its retransmit buffer.
func AppendAck(dst []byte, cum uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, cum)
}

// DecodeAck parses a cumulative-ack body.
func DecodeAck(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: ack body %d bytes", ErrCorrupt, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// Codec limits.
const (
	wireMagic   = 0xBD75
	wireVersion = 1

	MaxAttrs      = 1024
	MaxNameLen    = 255
	MaxStrLen     = 1 << 16 // 64 KiB
	MaxPayloadLen = 16 << 20
	MaxFilterLen  = 1 << 16
	MaxBodyLen    = 32 << 20
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("msg: bad frame magic")
	ErrBadVersion = errors.New("msg: unsupported wire version")
	ErrCorrupt    = errors.New("msg: corrupt frame")
	ErrTooLarge   = errors.New("msg: frame field exceeds limit")
)

// AppendMessage appends the body encoding of m to dst and returns the
// extended slice.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	if m.Attrs.Len() > MaxAttrs {
		return dst, fmt.Errorf("%w: %d attributes", ErrTooLarge, m.Attrs.Len())
	}
	if len(m.Payload) > MaxPayloadLen {
		return dst, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(m.Payload))
	}
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.ID))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Publisher))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Ingress))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Published))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Allowed))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.SizeKB))
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.Attrs.Len()))
	for _, a := range m.Attrs.All() {
		if len(a.Name) > MaxNameLen {
			return dst, fmt.Errorf("%w: attribute name %d bytes", ErrTooLarge, len(a.Name))
		}
		dst = append(dst, byte(len(a.Name)))
		dst = append(dst, a.Name...)
		if a.Val.Kind == filter.Number {
			dst = append(dst, 0)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Val.Num))
		} else {
			if len(a.Val.Str) > MaxStrLen {
				return dst, fmt.Errorf("%w: string value %d bytes", ErrTooLarge, len(a.Val.Str))
			}
			dst = append(dst, 1)
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Val.Str)))
			dst = append(dst, a.Val.Str...)
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	return dst, nil
}

// DecodeMessage parses a message body produced by AppendMessage.
func DecodeMessage(body []byte) (*Message, error) {
	r := reader{buf: body}
	m := &Message{}
	m.ID = ID(r.u64())
	m.Publisher = NodeID(r.u32())
	m.Ingress = NodeID(r.u32())
	m.Published = math.Float64frombits(r.u64())
	m.Allowed = math.Float64frombits(r.u64())
	m.SizeKB = math.Float64frombits(r.u64())
	n := int(r.u16())
	if n > MaxAttrs {
		return nil, fmt.Errorf("%w: %d attributes", ErrTooLarge, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		nameLen := int(r.u8())
		name := string(r.bytes(nameLen))
		kind := r.u8()
		switch kind {
		case 0:
			m.Attrs.Set(name, filter.Num(math.Float64frombits(r.u64())))
		case 1:
			strLen := int(r.u16())
			if strLen > MaxStrLen {
				return nil, fmt.Errorf("%w: string value %d bytes", ErrTooLarge, strLen)
			}
			m.Attrs.Set(name, filter.Str(string(r.bytes(strLen))))
		default:
			return nil, fmt.Errorf("%w: unknown attr kind %d", ErrCorrupt, kind)
		}
	}
	payloadLen := int(r.u32())
	if payloadLen > MaxPayloadLen {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, payloadLen)
	}
	if payloadLen > 0 {
		m.Payload = append([]byte(nil), r.bytes(payloadLen)...)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.pos)
	}
	return m, nil
}

// AppendSubscription appends the body encoding of s to dst.
func AppendSubscription(dst []byte, s *Subscription) ([]byte, error) {
	src := s.Filter.String()
	if len(src) > MaxFilterLen {
		return dst, fmt.Errorf("%w: filter %d bytes", ErrTooLarge, len(src))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.ID))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Edge))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Deadline))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Price))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(src)))
	dst = append(dst, src...)
	return dst, nil
}

// DecodeSubscription parses a subscription body.
func DecodeSubscription(body []byte) (*Subscription, error) {
	r := reader{buf: body}
	s := &Subscription{}
	s.ID = SubID(r.u32())
	s.Edge = NodeID(r.u32())
	s.Deadline = math.Float64frombits(r.u64())
	s.Price = math.Float64frombits(r.u64())
	srcLen := int(r.u16())
	if srcLen > MaxFilterLen {
		return nil, fmt.Errorf("%w: filter %d bytes", ErrTooLarge, srcLen)
	}
	src := string(r.bytes(srcLen))
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.pos)
	}
	f, err := filter.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Filter = f
	return s, nil
}

// WriteFrame writes one framed body to w.
func WriteFrame(w io.Writer, frameType byte, body []byte) error {
	if len(body) > MaxBodyLen {
		return fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(body))
	}
	hdr := make([]byte, 0, 8)
	hdr = binary.BigEndian.AppendUint16(hdr, wireMagic)
	hdr = append(hdr, wireVersion, frameType)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one framed body from r. It returns the frame type and
// body, or an error (io.EOF cleanly at a frame boundary).
func ReadFrame(r io.Reader) (frameType byte, body []byte, err error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr) != wireMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != wireVersion {
		return 0, nil, ErrBadVersion
	}
	frameType = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxBodyLen {
		return 0, nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, n)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return frameType, body, nil
}

// reader is a bounds-checked sequential decoder.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrCorrupt, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bytes(n int) []byte {
	if n < 0 {
		r.err = ErrCorrupt
		return nil
	}
	return r.take(n)
}
