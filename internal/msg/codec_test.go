package msg

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"bdps/internal/filter"
)

func sampleMessage() *Message {
	return &Message{
		ID:        MakeID(2, 77),
		Publisher: 2,
		Ingress:   1,
		Published: 123456.5,
		Allowed:   20000,
		SizeKB:    50,
		Attrs: NewAttrSet(
			Attr{"A1", filter.Num(3.25)},
			Attr{"A2", filter.Num(8.5)},
			Attr{"topic", filter.Str("traffic/k11")},
		),
		Payload: []byte("hello world"),
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	m := sampleMessage()
	body, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", m, got)
	}
}

func TestMessageCodecEmptyPayloadNilVsZero(t *testing.T) {
	m := sampleMessage()
	m.Payload = nil
	body, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Error("nil payload should decode as nil")
	}
}

func TestMessageCodecQuick(t *testing.T) {
	prop := func(id uint64, pub, ing int32, published, allowed, size float64,
		a1, a2 float64, s string) bool {
		if math.IsNaN(published) || math.IsNaN(allowed) || math.IsNaN(size) ||
			math.IsNaN(a1) || math.IsNaN(a2) {
			return true
		}
		if len(s) > 1000 {
			s = s[:1000]
		}
		m := &Message{
			ID: ID(id), Publisher: NodeID(pub), Ingress: NodeID(ing),
			Published: published, Allowed: allowed, SizeKB: size,
			Attrs: NewAttrSet(
				Attr{"A1", filter.Num(a1)},
				Attr{"A2", filter.Num(a2)},
				Attr{"s", filter.Str(s)},
			),
		}
		body, err := AppendMessage(nil, m)
		if err != nil {
			return false
		}
		got, err := DecodeMessage(body)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	body, err := AppendMessage(nil, sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut += 3 {
		if _, err := DecodeMessage(body[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestDecodeMessageTrailingGarbage(t *testing.T) {
	body, err := AppendMessage(nil, sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(body, 0xFF)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestDecodeMessageBadAttrKind(t *testing.T) {
	m := &Message{Attrs: NewAttrSet(Attr{"a", filter.Num(1)})}
	body, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// The attr kind byte sits right after the name; find and corrupt it.
	i := bytes.Index(body, []byte("a")) + 1
	body[i] = 9
	if _, err := DecodeMessage(body); err == nil {
		t.Error("unknown attr kind should fail")
	}
}

func TestAppendMessageLimits(t *testing.T) {
	m := &Message{Payload: make([]byte, MaxPayloadLen+1)}
	if _, err := AppendMessage(nil, m); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized payload: err = %v, want ErrTooLarge", err)
	}
	m2 := &Message{Attrs: NewAttrSet(Attr{strings.Repeat("n", MaxNameLen+1), filter.Num(1)})}
	if _, err := AppendMessage(nil, m2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized name: err = %v, want ErrTooLarge", err)
	}
}

func TestSubscriptionCodecRoundTrip(t *testing.T) {
	s := &Subscription{
		ID: 42, Edge: 19,
		Filter:   filter.MustParse("A1 < 6.25 && A2 < 3"),
		Deadline: 30000, Price: 2,
	}
	body, err := AppendSubscription(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscription(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != s.ID || got.Edge != s.Edge || got.Deadline != s.Deadline || got.Price != s.Price {
		t.Errorf("fields mismatch: %+v vs %+v", got, s)
	}
	if got.Filter.String() != s.Filter.String() {
		t.Errorf("filter mismatch: %q vs %q", got.Filter.String(), s.Filter.String())
	}
}

func TestSubscriptionCodecWildcard(t *testing.T) {
	s := &Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	body, err := AppendSubscription(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscription(body)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Filter.Match(NumAttrs(map[string]float64{"x": 1})) {
		t.Error("wildcard filter should survive the codec")
	}
}

func TestDecodeSubscriptionTruncated(t *testing.T) {
	s := &Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("a<1")}
	body, _ := AppendSubscription(nil, s)
	for cut := 0; cut < len(body); cut += 2 {
		if _, err := DecodeSubscription(body[:cut]); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body, _ := AppendMessage(nil, sampleMessage())
	if err := WriteFrame(&buf, FrameMessage, body); err != nil {
		t.Fatal(err)
	}
	sub := &Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("a<1")}
	sbody, _ := AppendSubscription(nil, sub)
	if err := WriteFrame(&buf, FrameSubscribe, sbody); err != nil {
		t.Fatal(err)
	}

	ft, b, err := ReadFrame(&buf)
	if err != nil || ft != FrameMessage || !bytes.Equal(b, body) {
		t.Fatalf("first frame: type=%d err=%v", ft, err)
	}
	ft, b, err = ReadFrame(&buf)
	if err != nil || ft != FrameSubscribe || !bytes.Equal(b, sbody) {
		t.Fatalf("second frame: type=%d err=%v", ft, err)
	}
	if _, _, err = ReadFrame(&buf); err != io.EOF {
		t.Errorf("clean EOF expected, got %v", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 1, 1, 0, 0, 0, 0})
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAck, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameMessage, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(raw)); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestDecodeMessageNeverPanicsOnMutation flips random bytes in valid
// encodings: decoding must fail cleanly or succeed, never panic or
// over-allocate.
func TestDecodeMessageNeverPanicsOnMutation(t *testing.T) {
	base, err := AppendMessage(nil, sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 5000; trial++ {
		mut := append([]byte(nil), base...)
		for flips := 0; flips <= trial%4; flips++ {
			mut[next(len(mut))] ^= byte(1 << next(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on mutation %d: %v", trial, r)
				}
			}()
			_, _ = DecodeMessage(mut)
		}()
	}
}

// TestDecodeSubscriptionNeverPanicsOnGarbage feeds raw noise.
func TestDecodeSubscriptionNeverPanicsOnGarbage(t *testing.T) {
	rng := uint64(12345)
	next := func() byte {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return byte(rng)
	}
	for trial := 0; trial < 3000; trial++ {
		buf := make([]byte, trial%97)
		for i := range buf {
			buf[i] = next()
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on garbage %d: %v", trial, r)
				}
			}()
			_, _ = DecodeSubscription(buf)
			_, _ = DecodeMessage(buf)
			_, _, _, _ = DecodeHello(buf)
			_, _, _ = DecodeHeartbeat(buf)
			_, _, _ = DecodeResume(buf)
		}()
	}
}

func TestHelloCodec(t *testing.T) {
	body := AppendHello(nil, RoleSubscriber, 42, 7)
	role, id, epoch, err := DecodeHello(body)
	if err != nil || role != RoleSubscriber || id != 42 || epoch != 7 {
		t.Errorf("hello round trip: role=%d id=%d epoch=%d err=%v", role, id, epoch, err)
	}
	// The pre-epoch 5-byte form still decodes, as epoch 0.
	role, id, epoch, err = DecodeHello(body[:5])
	if err != nil || role != RoleSubscriber || id != 42 || epoch != 0 {
		t.Errorf("legacy hello: role=%d id=%d epoch=%d err=%v", role, id, epoch, err)
	}
	if _, _, _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Error("short hello should fail")
	}
}

func TestHeartbeatCodec(t *testing.T) {
	body := AppendHeartbeat(nil, 6, 3)
	id, epoch, err := DecodeHeartbeat(body)
	if err != nil || id != 6 || epoch != 3 {
		t.Errorf("heartbeat round trip: id=%d epoch=%d err=%v", id, epoch, err)
	}
	if id, epoch, err = DecodeHeartbeat(body[:4]); err != nil || id != 6 || epoch != 0 {
		t.Errorf("legacy heartbeat: id=%d epoch=%d err=%v", id, epoch, err)
	}
	if _, _, err := DecodeHeartbeat(body[:3]); err == nil {
		t.Error("short heartbeat should fail")
	}
}

func TestResumeCodec(t *testing.T) {
	body := AppendResume(nil, 42, 1<<40)
	sub, lastSeq, err := DecodeResume(body)
	if err != nil || sub != 42 || lastSeq != 1<<40 {
		t.Errorf("resume round trip: sub=%d lastSeq=%d err=%v", sub, lastSeq, err)
	}
	if _, _, err := DecodeResume(body[:8]); err == nil {
		t.Error("short resume should fail")
	}
}

func TestDataHeaderEpoch(t *testing.T) {
	body := AppendDataHeader(nil, 9, 5, 2)
	seq, base, epoch, rest, err := DecodeDataHeader(body)
	if err != nil || seq != 9 || base != 5 || epoch != 2 || len(rest) != 0 {
		t.Errorf("data header round trip: seq=%d base=%d epoch=%d err=%v", seq, base, epoch, err)
	}
	if _, _, _, _, err := DecodeDataHeader(AppendDataHeader(nil, 3, 9, 0)); err == nil {
		t.Error("base above seq should fail")
	}
}

func TestReadFrameHugeBodyRejected(t *testing.T) {
	raw := []byte{0xBD, 0x75, 1, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}
