package msg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"bdps/internal/filter"
)

// This file is the zero-copy half of the wire codec: pooled frame
// buffers, a per-connection FrameReader that reads into them without
// per-frame allocation, a Decoder that decodes into pooled Messages
// whose payloads alias the frame buffer, and single-buffer frame
// assembly (BeginFrame/EndFrame) for batched writev egress. The
// allocating entry points in codec.go (ReadFrame, DecodeMessage) remain
// the simple path; the live data plane uses this one.

// maxPooledFrame bounds the frame buffers kept by the pool. Oversized
// bodies (jumbo payloads) still decode, but their buffers are dropped
// rather than pinned in the pool forever.
const maxPooledFrame = 64 << 10

// FrameBuf is one pooled frame body buffer. A FrameBuf is owned by
// whoever holds it: the FrameReader until the frame is decoded, then —
// when a decoded Message's payload aliases it — the Message until its
// last Release.
type FrameBuf struct {
	b []byte
}

var framePool = sync.Pool{New: func() any { return new(FrameBuf) }}

// GetFrameBuf returns a pooled frame buffer.
func GetFrameBuf() *FrameBuf { return framePool.Get().(*FrameBuf) }

// Release returns the buffer to the pool. Callers must drop every alias
// into the buffer first.
func (fb *FrameBuf) Release() {
	if fb == nil {
		return
	}
	if cap(fb.b) > maxPooledFrame {
		fb.b = nil
	}
	framePool.Put(fb)
}

// grow makes fb.b exactly n bytes long, reusing capacity.
func (fb *FrameBuf) grow(n int) []byte {
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	return fb.b
}

// FrameReader reads frames from one connection through a reusable
// header scratch and pooled body buffers: zero steady-state allocations
// per frame. It is not safe for concurrent use (one reader goroutine
// per connection, as the live runtime runs).
type FrameReader struct {
	r   *bufio.Reader
	hdr [8]byte
}

// NewFrameReader wraps a connection. The buffered layer is what lets
// the ingress path batch: after one frame is read, Buffered reports
// whether more frames are already in userspace.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered reports how many bytes are already readable without a
// syscall.
func (fr *FrameReader) Buffered() int { return fr.r.Buffered() }

// Next reads one frame into fb and returns the frame type and the body
// (aliasing fb's buffer). Ownership of the buffer content passes to the
// caller until fb is reused or released.
func (fr *FrameReader) Next(fb *FrameBuf) (frameType byte, body []byte, err error) {
	hdr := fr.hdr[:]
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(hdr) != wireMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[2] != wireVersion {
		return 0, nil, ErrBadVersion
	}
	frameType = hdr[3]
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxBodyLen {
		return 0, nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, n)
	}
	body = fb.grow(int(n))
	if _, err := io.ReadFull(fr.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return frameType, body, nil
}

// frameHdrLen is the fixed frame header size.
const frameHdrLen = 8

// BeginFrame appends a frame header with a placeholder body length and
// returns the extended buffer. Append the body, then call EndFrame on
// the same region to patch the length in. This assembles header + body
// in one contiguous buffer, so a sender can push a whole burst of
// frames with one writev instead of two writes per frame.
func BeginFrame(dst []byte, frameType byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, wireMagic)
	dst = append(dst, wireVersion, frameType, 0, 0, 0, 0)
	return dst
}

// EndFrame patches the body length of the frame whose header starts at
// offset start. It returns an error when the body exceeds MaxBodyLen.
func EndFrame(buf []byte, start int) error {
	body := len(buf) - start - frameHdrLen
	if body < 0 {
		return fmt.Errorf("%w: EndFrame before BeginFrame", ErrCorrupt)
	}
	if body > MaxBodyLen {
		return fmt.Errorf("%w: body %d bytes", ErrTooLarge, body)
	}
	binary.BigEndian.PutUint32(buf[start+4:], uint32(body))
	return nil
}

// AppendMessageFrame assembles one complete message frame (header +
// body) into dst — the reusable-buffer encoder of the batched egress
// path.
func AppendMessageFrame(dst []byte, m *Message) ([]byte, error) {
	start := len(dst)
	dst = BeginFrame(dst, FrameMessage)
	dst, err := AppendMessage(dst, m)
	if err != nil {
		return dst[:start], err
	}
	if err := EndFrame(dst, start); err != nil {
		return dst[:start], err
	}
	return dst, nil
}

// AppendDataFrame assembles one complete reliable-link data frame
// (header + seq/base/epoch prefix + message body) into dst — the
// FrameData counterpart of AppendMessageFrame for the batched egress
// path.
func AppendDataFrame(dst []byte, seq, base uint64, epoch uint32, m *Message) ([]byte, error) {
	start := len(dst)
	dst = BeginFrame(dst, FrameData)
	dst = AppendDataHeader(dst, seq, base, epoch)
	dst, err := AppendMessage(dst, m)
	if err != nil {
		return dst[:start], err
	}
	if err := EndFrame(dst, start); err != nil {
		return dst[:start], err
	}
	return dst, nil
}

// DataFrameType returns the offset of the frame-type byte within a frame
// assembled at `start` — the byte the loss shim mangles to turn a
// FrameData into a FrameDataDrop without reassembling the burst.
func DataFrameType(start int) int { return start + 3 }

// ---------------------------------------------------------------------
// Pooled messages.

// messagePool recycles Messages decoded by the live ingress path. A
// pooled message is reference-counted: the decoder starts it at one
// reference, the broker retains one per output queue the message enters,
// and each sender (or drop path) releases its reference after the final
// encode. The last release returns the message — and the frame buffer
// its payload aliases — to the pools.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

func (m *Message) init() {
	m.pooled = true
	atomic.StoreInt32(&m.refs, 1)
}

// GetMessage returns a pooled message with one reference. Its AttrSet
// keeps the backing array of its previous life, so steady-state decoding
// allocates nothing.
func GetMessage() *Message {
	m := messagePool.Get().(*Message)
	m.init()
	return m
}

// Retain adds n references to a pooled message. It is a no-op for
// ordinary (non-pooled) messages, so runtime code can manage references
// unconditionally.
func (m *Message) Retain(n int32) {
	if m.pooled {
		atomic.AddInt32(&m.refs, n)
	}
}

// Release drops one reference; ReleaseN drops n. The last release
// resets the message, releases the frame buffer the payload aliases,
// and returns the message to the pool. Both are no-ops for non-pooled
// messages.
func (m *Message) Release() { m.ReleaseN(1) }

// ReleaseN drops n references (see Release).
func (m *Message) ReleaseN(n int32) {
	if !m.pooled || n == 0 {
		return
	}
	if n < 0 {
		// A negative count would silently *add* references and leak the
		// message (and mask a retain-accounting bug upstream).
		panic("msg: negative release count")
	}
	if left := atomic.AddInt32(&m.refs, -n); left > 0 {
		return
	} else if left < 0 {
		panic("msg: message over-released")
	}
	m.pooled = false
	m.ID, m.Publisher, m.Ingress = 0, 0, 0
	m.Published, m.Allowed, m.SizeKB = 0, 0, 0
	m.Attrs.Reset()
	m.Payload = nil
	if fb := m.frame; fb != nil {
		m.frame = nil
		fb.Release()
	}
	messagePool.Put(m)
}

// ---------------------------------------------------------------------
// Zero-copy decoding.

// maxInterned bounds the per-decoder intern table's entry count and
// maxInternedLen each entry's size, so a hostile peer cycling attribute
// names or values cannot pin more than ~entry-cap × len-cap bytes per
// connection (attribute names are short by nature; long string values —
// up to MaxStrLen — are decoded fresh instead of retained). Past either
// cap, unseen strings fall back to an ordinary allocation.
const (
	maxInterned    = 4096
	maxInternedLen = 64
)

// Decoder decodes message bodies into pooled Messages without
// steady-state allocation: attribute names and string values are
// interned in a per-decoder table (attribute vocabularies are tiny and
// highly repetitive), and the payload aliases the frame buffer. One
// decoder per connection; not safe for concurrent use.
type Decoder struct {
	interned map[string]string
}

// intern returns b as a string, reusing a previous allocation when the
// same bytes have been seen before. Oversized strings are not retained
// (see maxInternedLen).
func (d *Decoder) intern(b []byte) string {
	if len(b) > maxInternedLen {
		return string(b)
	}
	if s, ok := d.interned[string(b)]; ok { // no alloc: mapaccess on []byte key
		return s
	}
	s := string(b)
	if d.interned == nil {
		d.interned = make(map[string]string, 16)
	}
	if len(d.interned) < maxInterned {
		d.interned[s] = s
	}
	return s
}

// DecodeMessageInto decodes a message body into m, reusing m's
// attribute backing array. When fb is non-nil and the message carries a
// payload, the payload aliases fb's buffer and m takes ownership of fb
// (released by m's last Release); otherwise ownership stays with the
// caller. The returned boolean reports whether m took ownership.
func (d *Decoder) DecodeMessageInto(m *Message, body []byte, fb *FrameBuf) (tookFrame bool, err error) {
	r := reader{buf: body}
	m.ID = ID(r.u64())
	m.Publisher = NodeID(r.u32())
	m.Ingress = NodeID(r.u32())
	m.Published = math.Float64frombits(r.u64())
	m.Allowed = math.Float64frombits(r.u64())
	m.SizeKB = math.Float64frombits(r.u64())
	m.Attrs.Reset()
	n := int(r.u16())
	if n > MaxAttrs {
		return false, fmt.Errorf("%w: %d attributes", ErrTooLarge, n)
	}
	if n > 0 && len(body) >= n*3 {
		// Reserve the exact count in one step (bounded by the body
		// length check above: each attr costs at least 3 wire bytes).
		m.Attrs.Grow(n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		nameLen := int(r.u8())
		name := r.bytes(nameLen)
		kind := r.u8()
		switch kind {
		case 0:
			m.Attrs.Set(d.intern(name), filter.Num(math.Float64frombits(r.u64())))
		case 1:
			strLen := int(r.u16())
			if strLen > MaxStrLen {
				return false, fmt.Errorf("%w: string value %d bytes", ErrTooLarge, strLen)
			}
			m.Attrs.Set(d.intern(name), filter.Str(d.intern(r.bytes(strLen))))
		default:
			return false, fmt.Errorf("%w: unknown attr kind %d", ErrCorrupt, kind)
		}
	}
	payloadLen := int(r.u32())
	if payloadLen > MaxPayloadLen {
		return false, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, payloadLen)
	}
	payload := r.bytes(payloadLen)
	if r.err != nil {
		return false, r.err
	}
	if r.pos != len(body) {
		return false, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.pos)
	}
	if payloadLen > 0 {
		m.Payload = payload
		if fb != nil {
			m.frame = fb
			return true, nil
		}
		// No frame to alias: the payload must survive the caller's buffer
		// reuse, so copy it (cold path; the live reader always passes fb).
		m.Payload = append([]byte(nil), payload...)
	} else {
		m.Payload = nil
	}
	return false, nil
}
