// Package msg defines the message model of the bounded-delay pub/sub
// system: typed attribute sets (the content the filters match on),
// published-message metadata including the publisher-specified delay bound,
// and a compact binary wire codec used by the live TCP runtime.
package msg

import (
	"fmt"

	"bdps/internal/filter"
	"bdps/internal/vtime"
)

// ID is a system-wide unique message identifier. Publishers allocate IDs
// from disjoint ranges (publisher index in the high bits), so IDs are
// unique without coordination.
type ID uint64

// NodeID identifies a participant in the overlay: brokers, publishers and
// subscribers each draw from their own space. It is defined here, in the
// leaf package, so that the topology, routing, broker and runtime layers
// can share it without import cycles.
type NodeID int32

// None is the absent NodeID (for example "no next hop: deliver locally").
const None NodeID = -1

// SubID identifies a subscription.
type SubID int32

// Scenario selects who specifies the delay bound (§4.1 of the paper).
type Scenario uint8

// The delay-requirement scenarios.
const (
	// PSD: publishers specify the allowed delay; the system maximizes the
	// delivery rate (eq. 1).
	PSD Scenario = iota
	// SSD: subscribers specify the allowed delay and a price per valid
	// message; the system maximizes the total earning (eq. 2).
	SSD
	// Both: publishers and subscribers each specify a bound and the
	// stricter one applies, with the subscriber's price — the extension
	// §4.1 sketches ("our work can easily be extended to the case where
	// both publishers and subscribers specify their delay requirements").
	Both
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case PSD:
		return "PSD"
	case SSD:
		return "SSD"
	case Both:
		return "PSD+SSD"
	}
	return fmt.Sprintf("Scenario(%d)", uint8(s))
}

// AllowedDelay returns the delay bound that applies to delivering message
// m to subscription sub under the scenario, and the price earned by a
// valid delivery (1 in PSD, per §5).
func (s Scenario) AllowedDelay(m *Message, sub *Subscription) (allowed vtime.Millis, price float64) {
	switch s {
	case PSD:
		return m.Allowed, 1
	case SSD:
		return sub.Deadline, sub.Price
	default:
		price = sub.Price
		if price <= 0 {
			price = 1
		}
		switch {
		case m.Allowed <= 0:
			return sub.Deadline, price
		case sub.Deadline <= 0:
			return m.Allowed, price
		case m.Allowed < sub.Deadline:
			return m.Allowed, price
		default:
			return sub.Deadline, price
		}
	}
}

// MakeID composes a message ID from a publisher index and a sequence
// number.
func MakeID(publisher NodeID, seq uint32) ID {
	return ID(uint64(uint32(publisher))<<32 | uint64(seq))
}

// Message is one published message in flight through the overlay.
//
// Allowed is the publisher-specified delay bound (PSD scenario); it is 0
// when the publisher did not specify one (SSD scenario, where bounds come
// from subscriptions). Delays and timestamps are virtual milliseconds.
type Message struct {
	ID        ID
	Publisher NodeID       // identity of the publishing client
	Ingress   NodeID       // broker at which the message entered the overlay
	Published vtime.Millis // publication timestamp
	Allowed   vtime.Millis // publisher-specified allowed delay; 0 = unspecified
	SizeKB    float64      // message size in kilobytes (propagation = SizeKB · TR)
	Attrs     AttrSet      // content attributes, matched by filters
	Payload   []byte       // opaque body; nil in the simulator

	// Pool state of the live data plane (frame.go). Zero for ordinary
	// messages, for which Retain/Release are no-ops.
	pooled bool
	refs   int32     // managed atomically while pooled
	frame  *FrameBuf // frame buffer the payload aliases, if any
}

// Age returns how long the message has been in the system at time now —
// the paper's hdl(m).
func (m *Message) Age(now vtime.Millis) vtime.Millis { return now - m.Published }

// Deadline returns the absolute publisher deadline, or +Inf when the
// publisher did not specify a bound.
func (m *Message) Deadline() vtime.Millis {
	if m.Allowed <= 0 {
		return vtime.Inf
	}
	return m.Published + m.Allowed
}

// ExpiredPSD reports whether the publisher-specified bound has passed.
func (m *Message) ExpiredPSD(now vtime.Millis) bool {
	return m.Allowed > 0 && now > m.Published+m.Allowed
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d from P%d via B%d (%.0fKB, t=%.0fms)",
		m.ID, m.Publisher, m.Ingress, m.SizeKB, m.Published)
}

// Subscription is one subscriber's standing interest, as issued to its
// edge broker. In the SSD scenario Deadline and Price are set by the
// subscriber; in the PSD scenario they are zero and the message's own
// bound applies with unit price (§5 of the paper: "set the price ... to 1,
// and change the delay requirement to be specified by publishers").
type Subscription struct {
	ID       SubID
	Edge     NodeID // broker the subscriber attaches to
	Filter   *filter.Filter
	Deadline vtime.Millis // subscriber-specified allowed delay; 0 = unspecified
	Price    float64      // earning per valid message; 0 = unspecified
}

// String implements fmt.Stringer.
func (s *Subscription) String() string {
	return fmt.Sprintf("sub %d @B%d [%s] dl=%.0fms pr=%.1f",
		s.ID, s.Edge, s.Filter.String(), s.Deadline, s.Price)
}
