package msg

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/vtime"
)

func testMessage(seq uint32) *Message {
	return &Message{
		ID:        MakeID(3, seq),
		Publisher: 3,
		Ingress:   1,
		Published: 123456.5,
		Allowed:   20 * vtime.Second,
		SizeKB:    50,
		Attrs: NewAttrSet(
			Attr{Name: "A1", Val: filter.Num(4.25)},
			Attr{Name: "A2", Val: filter.Num(float64(seq))},
			Attr{Name: "tag", Val: filter.Str("gold")},
		),
		Payload: []byte("payload-bytes"),
	}
}

// TestDecodeMessageIntoMatchesDecodeMessage pins the zero-copy decoder
// to the allocating one: same body, same decoded message.
func TestDecodeMessageIntoMatchesDecodeMessage(t *testing.T) {
	for _, m := range []*Message{
		testMessage(7),
		{ID: 1}, // minimal: no attrs, no payload
		{ID: 2, Attrs: NewAttrSet(Attr{Name: "s", Val: filter.Str("x")})},
	} {
		body, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecodeMessage(body)
		if err != nil {
			t.Fatal(err)
		}
		var d Decoder
		got := GetMessage()
		fb := GetFrameBuf()
		frame := append(fb.grow(0), body...)
		fb.b = frame
		took, err := d.DecodeMessageInto(got, frame, fb)
		if err != nil {
			t.Fatal(err)
		}
		if took != (len(m.Payload) > 0) {
			t.Errorf("tookFrame = %v with payload %d bytes", took, len(m.Payload))
		}
		if got.ID != want.ID || got.Publisher != want.Publisher || got.Ingress != want.Ingress ||
			got.Published != want.Published || got.Allowed != want.Allowed || got.SizeKB != want.SizeKB {
			t.Errorf("header mismatch:\n got %+v\nwant %+v", got, want)
		}
		if got.Attrs.Len() != want.Attrs.Len() ||
			(got.Attrs.Len() > 0 && !reflect.DeepEqual(got.Attrs.All(), want.Attrs.All())) {
			t.Errorf("attrs mismatch: got %v want %v", got.Attrs, want.Attrs)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("payload mismatch: got %q want %q", got.Payload, want.Payload)
		}
		got.Release()
		if !took {
			fb.Release()
		}
	}
}

// TestDecodeMessageIntoRejectsCorrupt mirrors the hostile-input guards
// of DecodeMessage on the zero-copy path.
func TestDecodeMessageIntoRejectsCorrupt(t *testing.T) {
	body, err := AppendMessage(nil, testMessage(1))
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	m := GetMessage()
	defer m.Release()
	for _, bad := range [][]byte{
		body[:len(body)-1], // truncated payload
		append(body, 0),    // trailing byte
		body[:10],          // truncated header
		{},                 // empty
	} {
		if _, err := d.DecodeMessageInto(m, bad, nil); err == nil {
			t.Errorf("corrupt body %d bytes decoded without error", len(bad))
		}
	}
}

// TestMessageRefcount exercises retain/release across a fan-out: the
// message must survive until the last reference drops, then recycle.
func TestMessageRefcount(t *testing.T) {
	m := GetMessage()
	if !m.pooled {
		t.Fatal("GetMessage returned a non-pooled message")
	}
	m.Retain(3) // e.g. three output queues
	m.ReleaseN(2)
	m.Release() // decode reference
	if !m.pooled {
		t.Fatal("message released while a reference remains")
	}
	m.Release() // last queue reference
	if m.pooled {
		t.Fatal("last release did not recycle the message")
	}
	// Non-pooled messages ignore the whole protocol.
	plain := testMessage(1)
	plain.Retain(5)
	plain.Release()
	plain.ReleaseN(4)
	if plain.ID != MakeID(3, 1) {
		t.Fatal("release mutated a non-pooled message")
	}
}

// TestFrameReaderRoundTrip pushes a burst of frames through a TCP pair
// and reads them back with the pooled reader.
func TestFrameReaderRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	const frames = 17
	go func() {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		var buf []byte
		for i := 0; i < frames; i++ {
			buf, err = AppendMessageFrame(buf[:0], testMessage(uint32(i)))
			if err != nil {
				done <- err
				return
			}
			if _, err := conn.Write(buf); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := NewFrameReader(conn)
	var d Decoder
	for i := 0; i < frames; i++ {
		fb := GetFrameBuf()
		ft, body, err := fr.Next(fb)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != FrameMessage {
			t.Fatalf("frame %d: type %d", i, ft)
		}
		m := GetMessage()
		took, err := d.DecodeMessageInto(m, body, fb)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.ID != MakeID(3, uint32(i)) {
			t.Fatalf("frame %d: id %d", i, m.ID)
		}
		if v, ok := m.Attrs.Attr("A2"); !ok || v.Num != float64(i) {
			t.Fatalf("frame %d: A2 = %v", i, v)
		}
		m.Release()
		if !took {
			fb.Release()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBeginEndFrame pins the single-buffer frame assembly against the
// two-write WriteFrame encoding.
func TestBeginEndFrame(t *testing.T) {
	body, err := AppendMessage(nil, testMessage(9))
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := WriteFrame(&legacy, FrameMessage, body); err != nil {
		t.Fatal(err)
	}
	framed, err := AppendMessageFrame(nil, testMessage(9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), framed) {
		t.Fatalf("frame encodings diverge:\n%x\n%x", legacy.Bytes(), framed)
	}
	// And it must parse back through the legacy reader.
	ft, got, err := ReadFrame(bytes.NewReader(framed))
	if err != nil || ft != FrameMessage || !bytes.Equal(got, body) {
		t.Fatalf("ReadFrame(AppendMessageFrame): ft=%d err=%v", ft, err)
	}
}

// TestDecoderSteadyStateAllocs verifies the headline property: after
// warm-up, decoding a message costs zero allocations.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	body, err := AppendMessage(nil, testMessage(3))
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	decodeOne := func() {
		m := GetMessage()
		fb := GetFrameBuf()
		frame := fb.grow(len(body))
		copy(frame, body)
		took, err := d.DecodeMessageInto(m, frame, fb)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
		if !took {
			fb.Release()
		}
	}
	for i := 0; i < 100; i++ { // warm pools and intern table
		decodeOne()
	}
	if avg := testing.AllocsPerRun(200, decodeOne); avg > 0 {
		t.Errorf("steady-state decode allocates %.2f objects/op, want 0", avg)
	}
}

// TestEndFrameBounds covers the error paths of the patching encoder.
func TestEndFrameBounds(t *testing.T) {
	if err := EndFrame([]byte{1, 2}, 0); err == nil {
		t.Error("EndFrame on a short buffer must fail")
	}
	buf := BeginFrame(nil, FrameMessage)
	if err := EndFrame(buf, 0); err != nil {
		t.Errorf("empty body should frame: %v", err)
	}
	if n := len(buf); n != frameHdrLen {
		t.Errorf("header length = %d", n)
	}
	if fmt.Sprintf("%x", buf[:2]) != "bd75" {
		t.Errorf("magic = %x", buf[:2])
	}
}
