package msg

import (
	"math"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/vtime"
)

func TestMakeIDUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for pub := NodeID(0); pub < 4; pub++ {
		for seq := uint32(0); seq < 100; seq++ {
			id := MakeID(pub, seq)
			if seen[id] {
				t.Fatalf("duplicate id %d for pub=%d seq=%d", id, pub, seq)
			}
			seen[id] = true
		}
	}
}

func TestMessageAgeAndDeadline(t *testing.T) {
	m := &Message{Published: 1000, Allowed: 20 * vtime.Second}
	if got := m.Age(5000); got != 4000 {
		t.Errorf("Age = %v, want 4000", got)
	}
	if got := m.Deadline(); got != 21000 {
		t.Errorf("Deadline = %v, want 21000", got)
	}
	if m.ExpiredPSD(21000) {
		t.Error("not expired exactly at deadline")
	}
	if !m.ExpiredPSD(21001) {
		t.Error("expired past deadline")
	}
}

func TestMessageNoDeadline(t *testing.T) {
	m := &Message{Published: 1000}
	if m.Deadline() != vtime.Inf {
		t.Error("unspecified bound should give +Inf deadline")
	}
	if m.ExpiredPSD(1e12) {
		t.Error("unbounded message never expires (PSD)")
	}
}

func TestAttrSetBasics(t *testing.T) {
	var s AttrSet
	s.Set("A2", filter.Num(7))
	s.Set("A1", filter.Num(3))
	s.Set("name", filter.Str("x"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if v, ok := s.Attr("A1"); !ok || v.Num != 3 {
		t.Error("A1 lookup failed")
	}
	if _, ok := s.Attr("missing"); ok {
		t.Error("missing attribute should not be found")
	}
	// Ordering by name.
	all := s.All()
	if all[0].Name != "A1" || all[1].Name != "A2" || all[2].Name != "name" {
		t.Errorf("attributes not sorted: %v", s)
	}
	// Replacement.
	s.Set("A1", filter.Num(9))
	if s.Len() != 3 {
		t.Error("Set of existing name must replace, not insert")
	}
	if v, _ := s.Attr("A1"); v.Num != 9 {
		t.Error("replacement value not applied")
	}
}

func TestAttrSetBinarySearchPath(t *testing.T) {
	var s AttrSet
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, n := range names {
		s.Set(n, filter.Num(float64(i)))
	}
	for i, n := range names {
		v, ok := s.Attr(n)
		if !ok || v.Num != float64(i) {
			t.Fatalf("lookup %q failed in large set", n)
		}
	}
	if _, ok := s.Attr("zz"); ok {
		t.Error("zz should be absent")
	}
}

func TestAttrSetClone(t *testing.T) {
	s := NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	c := s.Clone()
	c.Set("A1", filter.Num(99))
	if v, _ := s.Attr("A1"); v.Num != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestAttrSetMatchesFilter(t *testing.T) {
	s := NumAttrs(map[string]float64{"A1": 2.5, "A2": 9})
	f := filter.MustParse("A1 < 3 && A2 < 10")
	if !f.Match(s) {
		t.Error("filter should match attr set")
	}
}

func TestNumAttrs(t *testing.T) {
	s := NumAttrs(map[string]float64{"z": 1, "a": 2, "m": 3})
	all := s.All()
	if all[0].Name != "a" || all[1].Name != "m" || all[2].Name != "z" {
		t.Errorf("NumAttrs should sort names: %v", s)
	}
}

func TestAttrSetString(t *testing.T) {
	s := NewAttrSet(Attr{"A1", filter.Num(3.5)}, Attr{"tag", filter.Str("hot")})
	want := `{A1=3.5, tag="hot"}`
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestSubscriptionString(t *testing.T) {
	s := &Subscription{ID: 3, Edge: 17, Filter: filter.MustParse("A1<5"),
		Deadline: 10 * vtime.Second, Price: 3}
	got := s.String()
	if got == "" || math.IsNaN(s.Price) {
		t.Errorf("String = %q", got)
	}
}
