package msg

import (
	"sort"
	"strings"

	"bdps/internal/filter"
)

// Attr is one named attribute of a message.
type Attr struct {
	Name string
	Val  filter.Value
}

// AttrSet is an ordered set of attributes, sorted by name. Messages in the
// paper's workload carry two numeric attributes; the set supports any
// number and both value kinds. The zero value is an empty, usable set.
type AttrSet struct {
	attrs []Attr
}

// NewAttrSet builds a set from the given attributes. Later duplicates of
// the same name win.
func NewAttrSet(attrs ...Attr) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s.Set(a.Name, a.Val)
	}
	return s
}

// NumAttrs is a convenience constructor for all-numeric attribute sets,
// such as the paper's {A1=x1, A2=x2} heads.
func NumAttrs(kv map[string]float64) AttrSet {
	var s AttrSet
	for k, v := range kv {
		s.Set(k, filter.Num(v))
	}
	return s
}

// Reset empties the set, keeping the backing array for reuse.
func (s *AttrSet) Reset() { s.attrs = s.attrs[:0] }

// Grow ensures capacity for n attributes, so a decoder that knows the
// count up front pays one backing allocation instead of append growth.
func (s *AttrSet) Grow(n int) {
	if cap(s.attrs) < n {
		grown := make([]Attr, len(s.attrs), n)
		copy(grown, s.attrs)
		s.attrs = grown
	}
}

// Set inserts or replaces an attribute.
func (s *AttrSet) Set(name string, v filter.Value) {
	i := sort.Search(len(s.attrs), func(i int) bool { return s.attrs[i].Name >= name })
	if i < len(s.attrs) && s.attrs[i].Name == name {
		s.attrs[i].Val = v
		return
	}
	s.attrs = append(s.attrs, Attr{})
	copy(s.attrs[i+1:], s.attrs[i:])
	s.attrs[i] = Attr{Name: name, Val: v}
}

// Attr implements filter.Attrs.
func (s AttrSet) Attr(name string) (filter.Value, bool) {
	n := len(s.attrs)
	if n <= 8 {
		for _, a := range s.attrs {
			if a.Name == name {
				return a.Val, true
			}
		}
		return filter.Value{}, false
	}
	i := sort.Search(n, func(i int) bool { return s.attrs[i].Name >= name })
	if i < n && s.attrs[i].Name == name {
		return s.attrs[i].Val, true
	}
	return filter.Value{}, false
}

// Len returns the number of attributes.
func (s AttrSet) Len() int { return len(s.attrs) }

// Each implements filter.Iterable, visiting attributes in name order.
func (s AttrSet) Each(fn func(name string, v filter.Value)) {
	for _, a := range s.attrs {
		fn(a.Name, a.Val)
	}
}

// All returns the attributes in name order. The slice is shared; callers
// must not mutate it.
func (s AttrSet) All() []Attr { return s.attrs }

// Clone returns a deep copy of the set.
func (s AttrSet) Clone() AttrSet {
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return AttrSet{attrs: out}
}

// String implements fmt.Stringer, rendering "{A1=3.2, A2=7}".
func (s AttrSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(a.Val.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Interface conformance checks. Hot paths pass *AttrSet: boxing the
// pointer into the interface is free, where boxing the value copies the
// set to the heap on every call.
var (
	_ filter.Attrs    = AttrSet{}
	_ filter.Iterable = AttrSet{}
	_ filter.Attrs    = (*AttrSet)(nil)
	_ filter.Iterable = (*AttrSet)(nil)
)
