package msg

import (
	"bytes"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/vtime"
)

// FuzzCodec throws arbitrary bytes at every wire-protocol decoder: a
// hostile TCP peer must never be able to panic a live node, malformed
// frames must be rejected with an error, and anything that decodes must
// re-encode canonically (round-trip stability). Seeded with valid
// encodings so the fuzzer starts from the interesting region; CI runs it
// for 30 seconds on top of the stored corpus.
func FuzzCodec(f *testing.F) {
	m := &Message{
		ID:        MakeID(3, 7),
		Publisher: 3,
		Ingress:   1,
		Published: 123456.5,
		Allowed:   20 * vtime.Second,
		SizeKB:    50,
		Attrs: NewAttrSet(
			Attr{Name: "A1", Val: filter.Num(4.25)},
			Attr{Name: "tag", Val: filter.Str("gold")},
		),
		Payload: []byte("payload"),
	}
	mBody, err := AppendMessage(nil, m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mBody)

	sub := &Subscription{ID: 9, Edge: 2, Deadline: 10 * vtime.Second, Price: 3,
		Filter: filter.MustParse("A1 < 5 && A2 < 3")}
	sBody, err := AppendSubscription(nil, sub)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sBody)

	var framed bytes.Buffer
	if err := WriteFrame(&framed, FrameMessage, mBody); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add(AppendHello(nil, RoleBroker, 4, 0))
	f.Add(AppendHello(nil, RoleBroker, 4, 2))
	f.Add(AppendResume(nil, 9, 41))
	f.Add(AppendUnsubscribe(nil, 9))
	// Reliable-channel frames: a full data frame (seq/base header wrapping
	// a message body), a bare data header, a cumulative ack, and two
	// malformed variants — base above seq, and a truncated header.
	df, err := AppendDataFrame(nil, 7, 5, 1, m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(df)
	f.Add(append(AppendDataHeader(nil, 7, 5, 1), mBody...))
	f.Add(AppendAck(nil, 42))
	f.Add(AppendDataHeader(nil, 3, 9, 0))
	f.Add(AppendDataHeader(nil, 7, 5, 0)[:DataHdrLen-1])
	// A header claiming a huge body: must be refused, not allocated.
	f.Add([]byte{0xBD, 0x75, 1, FrameMessage, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The zero-copy decoder must accept exactly what the allocating
		// one accepts, and produce the same canonical re-encoding.
		var d Decoder
		pm := GetMessage()
		_, zerr := d.DecodeMessageInto(pm, data, nil)
		dm0, merr := DecodeMessage(data)
		if (zerr == nil) != (merr == nil) {
			t.Fatalf("decoders disagree: DecodeMessageInto=%v DecodeMessage=%v", zerr, merr)
		}
		if merr == nil {
			za, err1 := AppendMessage(nil, pm)
			ma, err2 := AppendMessage(nil, dm0)
			if err1 != nil || err2 != nil || !bytes.Equal(za, ma) {
				t.Fatalf("zero-copy decode re-encodes differently:\n%x\n%x", za, ma)
			}
		}
		pm.Release()

		// Message: decode, and on success require a stable canonical
		// re-encoding (decode∘encode must be idempotent).
		if dm, err := DecodeMessage(data); err == nil {
			enc, err := AppendMessage(nil, dm)
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %v", err)
			}
			dm2, err := DecodeMessage(enc)
			if err != nil {
				t.Fatalf("re-encoded message does not decode: %v", err)
			}
			enc2, err := AppendMessage(nil, dm2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("re-encoding is not canonical:\n%x\n%x", enc, enc2)
			}
		}
		// Subscription: same round-trip contract.
		if ds, err := DecodeSubscription(data); err == nil {
			enc, err := AppendSubscription(nil, ds)
			if err != nil {
				t.Fatalf("decoded subscription does not re-encode: %v", err)
			}
			if _, err := DecodeSubscription(enc); err != nil {
				t.Fatalf("re-encoded subscription does not decode: %v", err)
			}
		}
		// The small decoders must simply never panic.
		_, _, _, _ = DecodeHello(data)
		_, _, _ = DecodeHeartbeat(data)
		_, _, _ = DecodeResume(data)
		_, _ = DecodeUnsubscribe(data)
		// Data frame body: the header must round-trip bit for bit and obey
		// its invariant (base never above seq); the wrapped message body is
		// itself decoder-safe input.
		if seq, base, epoch, msgBody, err := DecodeDataHeader(data); err == nil {
			if base > seq {
				t.Fatalf("decoder accepted base %d > seq %d", base, seq)
			}
			enc := append(AppendDataHeader(nil, seq, base, epoch), msgBody...)
			if !bytes.Equal(enc, data) {
				t.Fatalf("data header re-encodes differently:\n%x\n%x", enc, data)
			}
			_, _ = DecodeMessage(msgBody)
		}
		// Cumulative ack: exact-size body, stable round-trip.
		if cum, err := DecodeAck(data); err == nil {
			if !bytes.Equal(AppendAck(nil, cum), data) {
				t.Fatalf("ack re-encodes differently")
			}
		}
		// Framing: a reader over hostile bytes must error or terminate,
		// and a recovered body must itself be safe to decode. The pooled
		// FrameReader must agree with the allocating ReadFrame.
		ft0, body0, err0 := ReadFrame(bytes.NewReader(data))
		fb := GetFrameBuf()
		ft1, body1, err1 := NewFrameReader(bytes.NewReader(data)).Next(fb)
		if (err0 == nil) != (err1 == nil) {
			t.Fatalf("frame readers disagree: ReadFrame=%v FrameReader=%v", err0, err1)
		}
		if err0 == nil {
			if ft0 != ft1 || !bytes.Equal(body0, body1) {
				t.Fatalf("frame readers decoded different frames")
			}
			switch ft0 {
			case FrameMessage:
				_, _ = DecodeMessage(body0)
			case FrameSubscribe:
				_, _ = DecodeSubscription(body0)
			}
		}
		fb.Release()
	})
}

// TestCodecRejectsOversizedFrameHeader pins the allocation guard the
// fuzz seed above probes: a frame header claiming more than MaxBodyLen
// must be refused before any body allocation.
func TestCodecRejectsOversizedFrameHeader(t *testing.T) {
	hdr := []byte{0xBD, 0x75, 1, FrameMessage, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("32 GiB-claiming frame header must be rejected")
	}
}
