package msg

import (
	"testing"

	"bdps/internal/vtime"
)

func TestScenarioStrings(t *testing.T) {
	if PSD.String() != "PSD" || SSD.String() != "SSD" || Both.String() != "PSD+SSD" {
		t.Error("scenario names wrong")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario should render")
	}
}

func TestAllowedDelayPSD(t *testing.T) {
	m := &Message{Allowed: 20 * vtime.Second}
	sub := &Subscription{Deadline: 10 * vtime.Second, Price: 3}
	allowed, price := PSD.AllowedDelay(m, sub)
	if allowed != 20*vtime.Second || price != 1 {
		t.Errorf("PSD = (%v, %v), want (20s, 1)", allowed, price)
	}
}

func TestAllowedDelaySSD(t *testing.T) {
	m := &Message{Allowed: 20 * vtime.Second}
	sub := &Subscription{Deadline: 10 * vtime.Second, Price: 3}
	allowed, price := SSD.AllowedDelay(m, sub)
	if allowed != 10*vtime.Second || price != 3 {
		t.Errorf("SSD = (%v, %v), want (10s, 3)", allowed, price)
	}
}

func TestAllowedDelayBothTakesStricter(t *testing.T) {
	sub := &Subscription{Deadline: 10 * vtime.Second, Price: 3}

	// Publisher stricter.
	m := &Message{Allowed: 5 * vtime.Second}
	allowed, price := Both.AllowedDelay(m, sub)
	if allowed != 5*vtime.Second || price != 3 {
		t.Errorf("Both = (%v, %v), want (5s, 3)", allowed, price)
	}

	// Subscriber stricter.
	m = &Message{Allowed: 30 * vtime.Second}
	allowed, _ = Both.AllowedDelay(m, sub)
	if allowed != 10*vtime.Second {
		t.Errorf("Both = %v, want 10s", allowed)
	}
}

func TestAllowedDelayBothMissingSides(t *testing.T) {
	// Only publisher bound.
	m := &Message{Allowed: 20 * vtime.Second}
	noSub := &Subscription{}
	allowed, price := Both.AllowedDelay(m, noSub)
	if allowed != 20*vtime.Second || price != 1 {
		t.Errorf("publisher-only Both = (%v, %v)", allowed, price)
	}
	// Only subscriber bound.
	m = &Message{}
	sub := &Subscription{Deadline: 10 * vtime.Second, Price: 2}
	allowed, price = Both.AllowedDelay(m, sub)
	if allowed != 10*vtime.Second || price != 2 {
		t.Errorf("subscriber-only Both = (%v, %v)", allowed, price)
	}
}
