// Stock-ticker dissemination under the subscriber-specified-delay (SSD)
// scenario: quotes are short-lived, subscribers pay tiered prices for
// tighter bounds, and the operator's earning depends on the scheduling
// strategy. This example runs the comparison on the simulator with the
// paper's full 32-broker overlay.
//
//	go run ./examples/stockticker
//
// It reproduces, at example scale, the Figure 5(a) story: EB-family
// strategies keep earning as load grows, FIFO and RL collapse.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bdps"
)

func main() {
	fmt.Println("stock ticker, SSD scenario: tiers 10s/$3, 30s/$2, 60s/$1")
	fmt.Println("sweeping publishing rate (quotes/min per exchange feed)")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tEBPC earning\tFIFO earning\tRL earning\tEBPC/FIFO")
	for _, rate := range []float64{3, 9, 15} {
		earn := map[string]float64{}
		for _, st := range []struct {
			key     string
			s       bdps.Strategy
			epsilon float64
		}{
			{"ebpc", bdps.EBPC(0.6), 0.0005},
			{"fifo", bdps.FIFO(), 0},
			{"rl", bdps.RL(), 0},
		} {
			res, err := bdps.RunSim(bdps.SimConfig{
				Seed:     3,
				Scenario: bdps.SSD,
				Strategy: st.s,
				Params:   bdps.Params{PD: 2 * bdps.Ms, Epsilon: st.epsilon},
				Workload: bdps.WorkloadConfig{
					RatePerMin: rate,
					Duration:   12 * bdps.Minute,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			earn[st.key] = res.Earning
		}
		ratio := 0.0
		if earn["fifo"] > 0 {
			ratio = earn["ebpc"] / earn["fifo"]
		}
		fmt.Fprintf(w, "%.0f\t$%.0f\t$%.0f\t$%.0f\t%.1f×\n",
			rate, earn["ebpc"], earn["fifo"], earn["rl"], ratio)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunder congestion the bounded-delay scheduler multiplies revenue:")
	fmt.Println("it spends bandwidth on quotes that can still meet their bounds")
	fmt.Println("and on the subscribers paying the most for them.")
}
