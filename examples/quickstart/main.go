// Quickstart: simulate the paper's broker overlay under load and compare
// the proposed EB scheduling strategy with the traditional FIFO and RL
// baselines.
//
//	go run ./examples/quickstart
//
// The run uses the paper's topology (32 brokers, 4 layers, 160
// subscribers), the publisher-specified-delay (PSD) scenario at a
// congested publishing rate, and a 15-minute window so it finishes in a
// couple of seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bdps"
)

func main() {
	const rate = 12 // messages/min per publisher: well into congestion

	strategies := []struct {
		name string
		s    bdps.Strategy
		// Traditional strategies have no invalid-message detection.
		epsilon float64
	}{
		{"EB (paper §5.1)", bdps.EB(), 0.0005},
		{"EBPC r=0.6 (paper §5.3)", bdps.EBPC(0.6), 0.0005},
		{"FIFO (baseline)", bdps.FIFO(), 0},
		{"RL (baseline)", bdps.RL(), 0},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tdelivery rate\ttraffic (msgs)\tp95 latency")
	for _, st := range strategies {
		res, err := bdps.RunSim(bdps.SimConfig{
			Seed:     1,
			Scenario: bdps.PSD,
			Strategy: st.s,
			Params:   bdps.Params{PD: 2 * bdps.Ms, Epsilon: st.epsilon},
			Workload: bdps.WorkloadConfig{
				RatePerMin: rate,
				Duration:   15 * bdps.Minute,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%d\t%.1fs\n",
			st.name, 100*res.DeliveryRate(), res.Receptions, res.LatencyP95Ms/1000)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nEB delivers far more messages within their bounds for a")
	fmt.Println("modest traffic increase — the paper's headline result.")
}
