// Traffic-information dissemination — the motivating example from the
// paper's introduction: subscribers near an incident need the news
// quickly, distant ones can wait, and the operator charges accordingly.
//
//	go run ./examples/traffic
//
// A live in-process cluster (real goroutines, real TCP on loopback, link
// speeds emulated at 1/500 time scale) serves three subscriber tiers for
// district K11:
//
//	nearby drivers:   5 s bound,  price 3
//	commuters:       30 s bound,  price 2
//	logistics firms: 60 s bound,  price 1
//
// A road-sensor publisher emits congestion reports; each tier sees only
// incidents at least as severe as it asked for.
package main

import (
	"fmt"
	"log"
	"time"

	"bdps"
	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

func main() {
	// A small city overlay: sensor hub 0 → district routers 1,2 → edge 3.
	g := topology.NewGraph(4)
	must(g.AddLink(0, 1, stats.Normal{Mean: 60, Sigma: 15}))
	must(g.AddLink(0, 2, stats.Normal{Mean: 90, Sigma: 15}))
	must(g.AddLink(1, 3, stats.Normal{Mean: 60, Sigma: 15}))
	must(g.AddLink(2, 3, stats.Normal{Mean: 90, Sigma: 15}))
	ov := &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{3},
		Name:    "city",
	}

	cluster, err := livenet.StartCluster(livenet.ClusterConfig{
		Overlay:   ov,
		Scenario:  bdps.SSD,
		Strategy:  core.MaxEBPC{R: 0.6},
		TimeScale: 0.002, // 1 emulated second ≈ 2 real milliseconds
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	tiers := []struct {
		name     string
		minSev   float64
		deadline vtime.Millis
		price    float64
	}{
		{"nearby drivers", 2, 5 * vtime.Second, 3},
		{"commuters", 5, 30 * vtime.Second, 2},
		{"logistics", 8, 60 * vtime.Second, 1},
	}
	subs := make([]*livenet.Subscriber, len(tiers))
	for i, tier := range tiers {
		f := filter.And(
			filter.NewPred("district", filter.EQ, filter.Str("K11")),
			filter.NewPred("severity", filter.GE, filter.Num(tier.minSev)),
		)
		s, err := livenet.DialSubscriber(cluster.Addr(3), &msg.Subscription{
			ID: msg.SubID(i + 1), Edge: 3, Filter: f,
			Deadline: tier.deadline, Price: tier.price,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
		fmt.Printf("subscribed %-15s severity ≥ %.0f, bound %v, price %.0f\n",
			tier.name, tier.minSev, time.Duration(tier.deadline)*time.Millisecond, tier.price)
	}
	time.Sleep(150 * time.Millisecond) // let subscriptions flood

	pub, err := livenet.DialPublisher(cluster.Addr(0), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	reports := []struct {
		district string
		severity float64
		note     string
	}{
		{"K11", 9, "multi-vehicle collision"},
		{"K11", 4, "slow traffic"},
		{"K07", 9, "different district"},
		{"K11", 6, "lane closure"},
	}
	for _, r := range reports {
		var set msg.AttrSet
		set.Set("district", filter.Str(r.district))
		set.Set("severity", filter.Num(r.severity))
		if _, err := pub.Publish(0, set, 50, 0, []byte(r.note)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %s severity %.0f (%s)\n", r.district, r.severity, r.note)
	}

	// Expected matches: severities 9,4,6 in K11 → drivers get all three;
	// commuters get 9 and 6; logistics only 9. K07 reaches nobody.
	expect := []int{3, 2, 1}
	for i, s := range subs {
		got := 0
		for {
			m, err := s.Receive(2 * time.Second)
			if err != nil {
				break
			}
			sev, _ := m.Attrs.Attr("severity")
			fmt.Printf("%-15s received severity %.0f (%s) valid=%v\n",
				tiers[i].name, sev.Num, m.Payload, s.Valid(m, bdps.SSD))
			got++
			if got == expect[i] {
				break
			}
		}
		if got != expect[i] {
			log.Fatalf("%s received %d reports, want %d", tiers[i].name, got, expect[i])
		}
	}
	fmt.Println("all tiers received exactly the incidents they asked for, within their bounds")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
