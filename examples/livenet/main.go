// Live overlay demo: the paper's full 32-broker layered mesh running as
// real goroutine brokers over loopback TCP, with the EBPC scheduler
// picking every transmission.
//
//	go run ./examples/livenet
//
// Link speeds are emulated at 1/200 time scale (an emulated 3.5 s hop
// takes 17.5 ms of wall time). The demo attaches one subscriber to each
// of four edge brokers, publishes a burst from two publishers and prints
// per-delivery latencies (in emulated time) against each bound.
package main

import (
	"fmt"
	"log"
	"time"

	"bdps"
	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

const timeScale = 0.005 // emulated ms → real ms factor

func main() {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("starting %d live brokers (overlay %q)…\n", ov.Graph.N(), ov.Name)
	cluster, err := livenet.StartCluster(livenet.ClusterConfig{
		Overlay:   ov,
		Scenario:  bdps.PSD,
		Strategy:  core.MaxEBPC{R: 0.6},
		TimeScale: timeScale,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// One wildcard subscriber on four different edge brokers.
	var subs []*livenet.Subscriber
	for i := 0; i < 4; i++ {
		edge := ov.Edges[i*4]
		s, err := livenet.DialSubscriber(cluster.Addr(edge), &msg.Subscription{
			ID: msg.SubID(i + 1), Edge: edge, Filter: &filter.Filter{},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		subs = append(subs, s)
		fmt.Printf("subscriber %d attached to edge broker B%d\n", i+1, edge)
	}
	time.Sleep(300 * time.Millisecond) // subscription flooding

	// Two publishers, a burst of five messages each, 20 s bounds.
	for p := 0; p < 2; p++ {
		pub, err := livenet.DialPublisher(cluster.Addr(ov.Ingress[p]), msg.NodeID(p))
		if err != nil {
			log.Fatal(err)
		}
		defer pub.Close()
		for i := 0; i < 5; i++ {
			attrs := msg.NumAttrs(map[string]float64{
				"A1": float64(i), "A2": float64(p),
			})
			if _, err := pub.Publish(ov.Ingress[p], attrs, 50, 20*vtime.Second, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("published 10 messages (50 KB emulated, 20 s bounds)")

	// Collect deliveries; each subscriber should see all 10 (wildcards).
	deadline := time.After(10 * time.Second)
	total, valid := 0, 0
	for i, s := range subs {
		for n := 0; n < 10; n++ {
			select {
			case m, ok := <-s.C():
				if !ok {
					log.Fatalf("subscriber %d closed early", i+1)
				}
				// Emulated latency: wall latency ÷ time scale.
				wallMs := float64(time.Now().UnixMicro())/1000 - m.Published
				emulated := time.Duration(wallMs/timeScale) * time.Millisecond
				ok2 := s.Valid(m, bdps.PSD)
				total++
				if ok2 {
					valid++
				}
				if n < 3 && i == 0 {
					fmt.Printf("  sub %d got msg %d: emulated latency %v (bound 20s) valid=%v\n",
						i+1, m.ID, emulated.Round(time.Millisecond), ok2)
				}
			case <-deadline:
				log.Fatalf("subscriber %d: only %d deliveries before timeout", i+1, n)
			}
		}
	}
	stats := cluster.TotalStats()
	fmt.Printf("deliveries: %d (%d valid), broker receptions: %d\n",
		total, valid, stats.Receptions)
	fmt.Println("the same scheduler that ran the simulation just ran on real sockets.")
}
