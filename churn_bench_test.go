// Churn benchmarks: the million-subscription matching engine under
// mutation. BenchmarkIndexBuild contrasts the historical re-sort-per-Add
// bulk build (quadratic) with the incremental tail-merge Add and the
// AddBatch bulk path (near-linear); BenchmarkChurn measures sustained
// subscribe/unsubscribe mutation on an indexed routing table, alone and
// concurrent with matching. These run at -benchtime 1x in `make bench`
// (one build of each size is the measurement; see Makefile).
package bdps

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
)

// paperFilters returns n paper-style subscription filters
// ("A1 < x && A2 < y", x,y ∈ (0,10)), memoized per size so filter
// construction stays out of the timed build.
var paperFilters = func() func(n int) []*filter.Filter {
	var mu sync.Mutex
	cache := map[int][]*filter.Filter{}
	return func(n int) []*filter.Filter {
		mu.Lock()
		defer mu.Unlock()
		if fs, ok := cache[n]; ok {
			return fs
		}
		s := stats.NewStream(1)
		fs := make([]*filter.Filter, n)
		for i := range fs {
			fs[i] = filter.And(
				filter.Lt("A1", s.Uniform(0, 10)),
				filter.Lt("A2", s.Uniform(0, 10)),
			)
		}
		cache[n] = fs
		return fs
	}
}()

// BenchmarkIndexBuild builds a counting index over n filters three ways:
//
//   - resort: Add + Flush after every insert — the cost model of the
//     pre-rework index, which re-sorted bound lists on every Add
//     (quadratic bulk build; the 1M point is omitted because it does not
//     finish in sensible time, which is the point).
//   - incremental: plain Add — unsorted tails merged only when they
//     outgrow √n (the live churn path).
//   - batch: AddBatch — each touched list sorted exactly once (the
//     plan-time bulk build).
func BenchmarkIndexBuild(b *testing.B) {
	bench := func(n int, build func(fs []*filter.Filter) *filter.Index) func(*testing.B) {
		return func(b *testing.B) {
			fs := paperFilters(n)
			b.ReportAllocs()
			b.ResetTimer()
			var ix *filter.Index
			for i := 0; i < b.N; i++ {
				ix = build(fs)
			}
			if ix.Len() != n {
				b.Fatalf("index holds %d of %d filters", ix.Len(), n)
			}
		}
	}
	incremental := func(fs []*filter.Filter) *filter.Index {
		ix := filter.NewIndex()
		for i, f := range fs {
			ix.Add(int32(i), f)
		}
		return ix
	}
	resort := func(fs []*filter.Filter) *filter.Index {
		ix := filter.NewIndex()
		for i, f := range fs {
			ix.Add(int32(i), f)
			ix.Flush() // the old implementation's per-Add re-sort
		}
		return ix
	}
	batch := func(fs []*filter.Filter) *filter.Index {
		ids := make([]int32, len(fs))
		for i := range ids {
			ids[i] = int32(i)
		}
		ix := filter.NewIndex()
		ix.AddBatch(ids, fs)
		return ix
	}
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("resort-%d", n), bench(n, resort))
	}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("incremental-%d", n), bench(n, incremental))
	}
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("batch-%d", n), bench(n, batch))
	}
}

// churnTable builds an indexed single-source table of n paper-style
// entries.
func churnTable(n int) *routing.Table {
	fs := paperFilters(n)
	tb := routing.NewTable(0)
	for i, f := range fs {
		tb.Add(&routing.Entry{
			Sub:    &msg.Subscription{ID: msg.SubID(i), Edge: 5, Filter: f},
			Source: 0,
			Next:   5,
		})
	}
	tb.EnableIndex()
	return tb
}

// BenchmarkChurnTableOps measures sustained table mutation: one op is a
// subscribe (Add into the live index) plus an unsubscribe of an earlier
// subscription (tombstone + amortized compaction) on a 100k-entry
// indexed table — the per-broker cost of one churn pair.
func BenchmarkChurnTableOps(b *testing.B) {
	const n = 100_000
	tb := churnTable(n)
	fs := paperFilters(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := msg.SubID(n + i)
		tb.Add(&routing.Entry{
			Sub:    &msg.Subscription{ID: id, Edge: 5, Filter: fs[i%n]},
			Source: 0,
			Next:   5,
		})
		tb.RemoveSub(msg.SubID(i % n)) // retire an original entry
		if i >= n {
			tb.RemoveSub(msg.SubID(i)) // steady state: retire churned-in ones too
		}
	}
	if tb.Len() == 0 {
		b.Fatal("table drained")
	}
}

// BenchmarkChurnMatch measures matching throughput on a 100k-entry
// indexed table, quiet and then concurrent with a sustained churn flood
// (2000 subscribe+unsubscribe pairs/sec under the write lock, the
// readers-writer pattern of the live node). The acceptance bar is the
// churning figure staying within ~10% of quiet.
func BenchmarkChurnMatch(b *testing.B) {
	const n = 100_000
	const churnPairsPerSec = 2000
	match := func(b *testing.B, churn bool) {
		tb := churnTable(n)
		fs := paperFilters(n)
		var mu sync.RWMutex
		stop := make(chan struct{})
		var churned int
		if churn {
			go func() {
				interval := time.Second / churnPairsPerSec
				next := time.Now()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := msg.SubID(n + i)
					mu.Lock()
					tb.Add(&routing.Entry{
						Sub:    &msg.Subscription{ID: id, Edge: 5, Filter: fs[i%n]},
						Source: 0,
						Next:   5,
					})
					tb.RemoveSub(msg.SubID(i % n))
					tb.RemoveSub(id - 1000) // bounded churned-in population
					churned++
					mu.Unlock()
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}()
		}
		// ~4% selectivity: the match cost is index work plus a few
		// thousand emitted entries, not result-copy noise.
		m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 8, "A2": 8})}
		var scratch filter.MatchScratch
		var buf []*routing.Entry
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.RLock()
			buf = tb.MatchAppendWith(&scratch, m, buf[:0])
			mu.RUnlock()
			if len(buf) == 0 {
				b.Fatal("no matches")
			}
		}
		b.StopTimer()
		close(stop)
		if churn {
			b.ReportMetric(float64(churned)/b.Elapsed().Seconds(), "churn-pairs/sec")
		}
	}
	b.Run("quiet", func(b *testing.B) { match(b, false) })
	b.Run("churning", func(b *testing.B) { match(b, true) })
}
