package bdps

import (
	grt "runtime"
	"sync"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// BenchmarkLiveThroughput drives an in-process live cluster at maximum
// rate — TimeScale ≈ 0 turns link pacing and processing delay off — and
// measures the data plane itself: decode, match, enqueue, schedule,
// encode, socket writes. ns/op is the wall time per published message
// end to end (injection through cluster quiescence, every message
// delivered to a subscriber); msgs/sec and allocs/op (the whole
// pipeline, all goroutines) are the headline numbers.
//
// The sub-benchmarks are the before/after pair of PR 4:
//
//	legacy  — the pre-PR single-threaded plane (per-frame allocation,
//	          one node-wide lock, two write syscalls per frame)
//	sharded — the zero-copy, sharded, batched-writev plane
func BenchmarkLiveThroughput(b *testing.B) {
	b.Run("legacy", func(b *testing.B) { benchmarkLiveThroughput(b, 0) })
	// One shard per core, the deployment guidance: extra workers on a
	// starved box only add scheduler churn.
	b.Run("sharded", func(b *testing.B) { benchmarkLiveThroughput(b, grt.GOMAXPROCS(0)) })
}

// benchChainOverlay is a three-broker chain: ingress 0 → 1 → 2 edge,
// so every message crosses two overlay links plus the client legs.
func benchChainOverlay(b *testing.B) *topology.Overlay {
	b.Helper()
	g := topology.NewGraph(3)
	for i := msg.NodeID(0); i < 2; i++ {
		if err := g.AddLink(i, i+1, stats.Normal{Mean: 50, Sigma: 5}); err != nil {
			b.Fatal(err)
		}
	}
	return &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{2}}
}

func benchmarkLiveThroughput(b *testing.B, shards int) {
	c, err := livenet.StartCluster(livenet.ClusterConfig{
		Overlay:  benchChainOverlay(b),
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		// Pacing off: emulated link sleeps round to 0 wall time. The
		// default absolute wall clock (scale 1) keeps deadline math
		// sane: microsecond wall latencies against second-scale bounds.
		TimeScale: 1e-9,
		Seed:      1,
		Shards:    shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := livenet.DialSubscriber(c.Addr(2), sub)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond) // subscription flood

	const nPubs = 4
	pubs := make([]*livenet.Publisher, nPubs)
	for i := range pubs {
		p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		pubs[i] = p
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})

	b.ReportAllocs()
	b.ResetTimer()

	var wg sync.WaitGroup
	for i, p := range pubs {
		n := b.N / nPubs
		if i < b.N%nPubs {
			n++
		}
		wg.Add(1)
		go func(p *livenet.Publisher, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := p.Publish(0, attrs, 1, 60*vtime.Second, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(p, n)
	}
	wg.Wait()

	// Run to quiescence: every injected message delivered or dropped,
	// every queue empty, nothing in flight.
	deadline := time.Now().Add(2 * time.Minute)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			b.Fatal("cluster did not quiesce")
		}
		if c.Quiescent(b.N) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	total := c.TotalStats()
	if total.Deliveries < b.N {
		b.Fatalf("delivered %d of %d messages", total.Deliveries, b.N)
	}
}
